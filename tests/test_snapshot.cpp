// Streaming-telemetry suite (docs/OBSERVABILITY.md §streaming snapshots):
// the SnapshotStreamer's delta-encoded JSONL, the StallWatchdog's
// no-progress latch, the 4-way engine byte-equality of the stream (the
// determinism contract: window boundaries are mandatory landing cycles
// for the event engines), the injectable livelock fault, heterogeneous
// per-node policies, and the `mac3d analyze` math — Little's law, the
// conservation audits and the exit contract — over hand-built analytic
// streams.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "arch/system.hpp"
#include "common/config.hpp"
#include "common/rng.hpp"
#include "obs/analysis.hpp"
#include "obs/obs.hpp"
#include "obs/profiler.hpp"
#include "obs/registry.hpp"
#include "obs/snapshot.hpp"
#include "sim/driver.hpp"
#include "trace/trace.hpp"

namespace mac3d {
namespace {

// ---- StallWatchdog ---------------------------------------------------------

TEST(StallWatchdog, FiresAfterThresholdStalledWindows) {
  StallWatchdog dog(3);
  dog.observe_window(100, 5, 10);  // progress
  dog.observe_window(200, 0, 10);
  dog.observe_window(300, 0, 10);
  EXPECT_FALSE(dog.fired());
  dog.observe_window(400, 0, 10);
  EXPECT_TRUE(dog.fired());
  EXPECT_EQ(dog.fired_at(), 400u);
  EXPECT_EQ(dog.stalled_windows(), 3u);
  EXPECT_EQ(dog.windows_observed(), 4u);
}

TEST(StallWatchdog, ProgressResetsTheStreak) {
  StallWatchdog dog(2);
  dog.observe_window(100, 0, 10);
  dog.observe_window(200, 1, 10);  // progress: streak back to zero
  dog.observe_window(300, 0, 10);
  EXPECT_FALSE(dog.fired());
  dog.observe_window(400, 0, 10);
  EXPECT_TRUE(dog.fired());
}

TEST(StallWatchdog, EmptyPipelineIsNotAStall) {
  StallWatchdog dog(1);
  for (Cycle c = 100; c <= 1000; c += 100) dog.observe_window(c, 0, 0);
  EXPECT_FALSE(dog.fired());  // nothing in flight: idle, not livelocked
  dog.observe_window(1100, 0, 7);
  EXPECT_TRUE(dog.fired());
}

TEST(StallWatchdog, ZeroThresholdClampsToOne) {
  StallWatchdog dog(0);
  EXPECT_EQ(dog.threshold(), 1u);
  dog.observe_window(100, 0, 1);
  EXPECT_TRUE(dog.fired());
}

TEST(StallWatchdog, FiredStateLatches) {
  StallWatchdog dog(1);
  dog.observe_window(100, 0, 1);
  ASSERT_TRUE(dog.fired());
  dog.observe_window(200, 50, 0);  // later progress cannot un-fire it
  EXPECT_TRUE(dog.fired());
  EXPECT_EQ(dog.fired_at(), 100u);
}

// ---- SnapshotStreamer unit -------------------------------------------------

TEST(SnapshotStreamer, EmitsDeltaEncodedWindows) {
  SnapshotStreamer snapshot(10);
  std::uint64_t injected = 0;
  std::uint64_t completions = 0;
  snapshot.begin_run("unit");
  snapshot.add_counter(SnapshotStreamer::kInjectedCounter,
                       [&] { return injected; });
  snapshot.add_counter(SnapshotStreamer::kCompletionsCounter,
                       [&] { return completions; });
  injected = 6;
  completions = 2;
  snapshot.advance_to(10);
  injected = 9;
  completions = 9;
  snapshot.advance_to(20);
  snapshot.end_run(25);

  const std::string expected =
      "{\"schema\":\"mac3d-snapshot/1\",\"period\":10}\n"
      "{\"run\":\"unit\"}\n"
      "{\"cycle\":10,\"counters\":{\"completions\":2,\"injected\":6},"
      "\"in_flight\":4}\n"
      "{\"cycle\":20,\"counters\":{\"completions\":7,\"injected\":3},"
      "\"in_flight\":0}\n"
      "{\"cycle\":25,\"in_flight\":0}\n"
      "{\"end\":\"unit\",\"cycle\":25,\"windows\":3,\"injected\":9,"
      "\"completions\":9,\"in_flight_at_end\":0}\n";
  EXPECT_EQ(snapshot.str(), expected);
}

TEST(SnapshotStreamer, OmitsQuietCountersAndSamplesGaugesAbsolute) {
  SnapshotStreamer snapshot(100);
  std::uint64_t moved = 0;
  double depth = 0.0;
  snapshot.begin_run("unit");
  snapshot.add_counter("bytes", [&] { return moved; });
  snapshot.add_gauge("depth", [&] { return depth; });
  moved = 64;
  depth = 3.5;
  snapshot.advance_to(100);
  depth = 1.25;  // counter quiet this window, gauge resampled
  snapshot.advance_to(200);
  snapshot.end_run(200);
  EXPECT_NE(snapshot.str().find(
                "{\"cycle\":100,\"counters\":{\"bytes\":64},\"in_flight\":0,"
                "\"gauges\":{\"depth\":3.5}}"),
            std::string::npos);
  EXPECT_NE(snapshot.str().find(
                "{\"cycle\":200,\"in_flight\":0,"
                "\"gauges\":{\"depth\":1.25}}"),
            std::string::npos);
}

TEST(SnapshotStreamer, ExportsWindowAndWatchdogMetricFamilies) {
  SnapshotStreamer snapshot(50);
  StallWatchdog dog(2);
  snapshot.attach_watchdog(&dog);
  snapshot.begin_run("unit");
  snapshot.advance_to(150);
  snapshot.end_run(150);
  MetricsRegistry registry;
  snapshot.export_metrics(registry);
  const std::string json = registry.to_json();
  EXPECT_NE(json.find("window.count"), std::string::npos);
  EXPECT_NE(json.find("watchdog.fired"), std::string::npos);
}

// ---- Engine byte-equality --------------------------------------------------

/// The test_parallel_equivalence generator: sequential stream with random
/// row jumps plus a fence/store/atomic sprinkle.
MemoryTrace locality_trace(double locality, std::uint32_t threads,
                           std::uint32_t per_thread, std::uint64_t seed) {
  MemoryTrace trace(threads);
  Xoshiro256 rng(seed);
  std::vector<std::uint64_t> position(threads, 0);
  for (std::uint32_t i = 0; i < per_thread; ++i) {
    for (std::uint32_t t = 0; t < threads; ++t) {
      if (rng.uniform() >= locality) {
        position[t] = rng.below(1ull << 22) * 16;
      } else {
        position[t] += 8;
      }
      const Address addr = (i * threads + t) % 4 == 0
                               ? position[t]
                               : (static_cast<Address>(i) * threads + t) * 8;
      trace.instr(static_cast<ThreadId>(t), 2);
      switch (rng.below(24)) {
        case 0: trace.atomic(static_cast<ThreadId>(t), addr & ~0x7ull, 8);
                break;
        case 1: trace.fence(static_cast<ThreadId>(t)); break;
        case 2: trace.store(static_cast<ThreadId>(t), addr & ~0x7ull, 8);
                break;
        default: trace.load(static_cast<ThreadId>(t), addr & ~0x7ull); break;
      }
    }
  }
  return trace;
}

std::string driver_stream(CoalescerPolicy policy, Engine engine,
                          const MemoryTrace& trace, const SimConfig& config) {
  SnapshotStreamer snapshot(64);
  ActivityCensus census;
  DriveOptions options;
  options.engine = engine;
  options.engine_threads = 2;
  options.snapshot = &snapshot;
  options.census = &census;
  const DriverResult result = run_policy(policy, trace, config, 4, options);
  // raw_requests excludes fences but completions includes them, so the
  // drained count can only be >= (equality when the trace has no fences).
  EXPECT_GE(result.completions, result.raw_requests);
  census.seal();
  return snapshot.str();
}

#if MAC3D_OBS_ENABLED
TEST(SnapshotEquivalence, DriverStreamByteIdenticalAcrossEngines) {
  const MemoryTrace trace = locality_trace(0.6, 4, 250, 20260808);
  SimConfig config;
  config.validate();
  for (const CoalescerPolicy policy :
       {CoalescerPolicy::kMac, CoalescerPolicy::kRaw, CoalescerPolicy::kMshr,
        CoalescerPolicy::kWarp}) {
    const std::string reference =
        driver_stream(policy, Engine::kSerial, trace, config);
    EXPECT_FALSE(reference.empty());
    for (const Engine engine :
         {Engine::kParallel, Engine::kEvent, Engine::kEventParallel}) {
      EXPECT_EQ(driver_stream(policy, engine, trace, config), reference)
          << "policy " << to_string(policy) << " engine "
          << static_cast<int>(engine);
    }
  }
}

std::string system_stream(int engine, const MemoryTrace& trace,
                          const SimConfig& config) {
  System system(config);
  system.attach_trace(trace);
  SnapshotStreamer snapshot(64);
  system.attach_snapshot(&snapshot);
  SystemRunSummary summary;
  switch (engine) {
    case 0: summary = system.run(); break;
    case 1: summary = system.run_parallel(2); break;
    case 2: summary = system.run_event(); break;
    default: summary = system.run_event_parallel(2); break;
  }
  EXPECT_TRUE(summary.completed);
  return snapshot.str();
}

TEST(SnapshotEquivalence, SystemStreamByteIdenticalAcrossEngines) {
  SimConfig config;
  config.nodes = 2;
  config.validate();
  const MemoryTrace trace = locality_trace(0.5, 4, 120, 7);
  const std::string reference = system_stream(0, trace, config);
  EXPECT_FALSE(reference.empty());
  for (int engine = 1; engine < 4; ++engine) {
    EXPECT_EQ(system_stream(engine, trace, config), reference)
        << "engine " << engine;
  }
}

// ---- Livelock fault + watchdog end-to-end ----------------------------------

TEST(SnapshotWatchdog, FiresOnInjectedLivelock) {
  const MemoryTrace trace = locality_trace(0.6, 2, 200, 11);
  SimConfig config;
  config.validate();
  SnapshotStreamer snapshot(32);
  StallWatchdog dog(3);
  snapshot.attach_watchdog(&dog);
  DriveOptions options;
  options.snapshot = &snapshot;
  options.inject_livelock_at = 200;  // stop draining completions here
  const DriverResult result =
      run_policy(CoalescerPolicy::kMac, trace, config, 2, options);
  EXPECT_TRUE(dog.fired());
  EXPECT_GE(dog.stalled_windows(), 3u);
  EXPECT_LT(result.completions, result.raw_requests);
  EXPECT_NE(snapshot.str().find("\"watchdog\":\"fired\""), std::string::npos);
}

TEST(SnapshotWatchdog, SilentOnCleanRun) {
  const MemoryTrace trace = locality_trace(0.6, 2, 200, 11);
  SimConfig config;
  config.validate();
  // Period must dwarf the device round-trip: a window shorter than the
  // cold-start latency would read warm-up as a livelock (the CLI default
  // is 1024 for the same reason).
  SnapshotStreamer snapshot(1024);
  StallWatchdog dog(3);
  snapshot.attach_watchdog(&dog);
  DriveOptions options;
  options.snapshot = &snapshot;
  const DriverResult result =
      run_policy(CoalescerPolicy::kMac, trace, config, 2, options);
  EXPECT_FALSE(dog.fired());
  EXPECT_GE(result.completions, result.raw_requests);
  EXPECT_EQ(snapshot.str().find("\"watchdog\""), std::string::npos);
  EXPECT_GT(dog.windows_observed(), 0u);
}
#else   // !MAC3D_OBS_ENABLED
TEST(SnapshotObsOff, StreamerStaysInertThroughDriver) {
  const MemoryTrace trace = locality_trace(0.6, 2, 100, 11);
  SimConfig config;
  config.validate();
  SnapshotStreamer snapshot(32);
  DriveOptions options;
  options.snapshot = &snapshot;  // driver must ignore it entirely
  const DriverResult result =
      run_policy(CoalescerPolicy::kMac, trace, config, 2, options);
  EXPECT_GE(result.completions, result.raw_requests);
  EXPECT_TRUE(snapshot.str().empty());
  EXPECT_EQ(snapshot.window_count(), 0u);
}
#endif  // MAC3D_OBS_ENABLED

// ---- Heterogeneous per-node policies ---------------------------------------

TEST(NodePolicies, ConfigParsesAndLaterEntriesWin) {
  SimConfig config;
  config.nodes = 4;
  config.parse_overrides({{"node_policies", "1:raw;2:mshr;1:warp"}});
  config.validate();
  EXPECT_EQ(config.policy_for_node(0), CoalescerPolicy::kMac);
  EXPECT_EQ(config.policy_for_node(1), CoalescerPolicy::kWarp);
  EXPECT_EQ(config.policy_for_node(2), CoalescerPolicy::kMshr);
  EXPECT_EQ(config.policy_for_node(3), CoalescerPolicy::kMac);
}

TEST(NodePolicies, ValidateRejectsOutOfRangeNode) {
  SimConfig config;
  config.nodes = 2;
  config.node_policies = "2:raw";
  EXPECT_THROW(config.validate(), ConfigError);
}

TEST(NodePolicies, OverrideRejectsMalformedEntries) {
  SimConfig config;
  EXPECT_THROW(config.parse_overrides({{"node_policies", "0=raw"}}),
               ConfigError);
  EXPECT_THROW(config.parse_overrides({{"node_policies", "0:fast"}}),
               ConfigError);
}

TEST(NodePolicies, HeterogeneousSystemRunConserves) {
  SimConfig config;
  config.nodes = 2;
  config.parse_overrides({{"node_policies", "1:raw"}});
  config.validate();
  System system(config);
  const MemoryTrace trace = locality_trace(0.5, 4, 100, 13);
  system.attach_trace(trace);
  const SystemRunSummary summary = system.run();
  EXPECT_TRUE(summary.completed);
  EXPECT_EQ(summary.requests, summary.completions);
}

// ---- mac3d analyze ---------------------------------------------------------

/// Ten equal windows at constant rate: λ = 0.5/cycle, L = 10 in flight,
/// so Little's law gives W = L/λ = 20 cycles exactly.
std::string analytic_stream() {
  std::string text =
      "{\"schema\":\"mac3d-snapshot/1\",\"period\":100}\n"
      "{\"run\":\"unit\"}\n"
      "{\"cycle\":100,\"counters\":{\"completions\":50,\"injected\":60},"
      "\"in_flight\":10}\n";
  for (int w = 2; w <= 10; ++w) {
    text += "{\"cycle\":" + std::to_string(w * 100) +
            ",\"counters\":{\"completions\":50,\"injected\":50},"
            "\"in_flight\":10}\n";
  }
  text +=
      "{\"end\":\"unit\",\"cycle\":1000,\"windows\":10,\"injected\":510,"
      "\"completions\":500,\"in_flight_at_end\":10}\n";
  return text;
}

TEST(Analyze, LittlesLawOnAnalyticStream) {
  SnapshotStream stream;
  std::string error;
  ASSERT_TRUE(parse_snapshot_stream(analytic_stream(), stream, error))
      << error;
  ASSERT_EQ(stream.runs.size(), 1u);
  EXPECT_EQ(stream.period, 100u);
  EXPECT_EQ(stream.runs[0].windows.size(), 10u);

  FlatReport report;
  ASSERT_TRUE(flatten_json(
      "{\"paths\":{\"unit\":{\"stats\":{\"unit\":{\"completions\":500,"
      "\"avg_latency_cycles\":21}}}}}",
      report, error))
      << error;
  const AnalysisResult result =
      analyze_stream(report, stream, AnalysisOptions{});
  ASSERT_EQ(result.runs.size(), 1u);
  const RunAnalysis& run = result.runs[0];
  EXPECT_DOUBLE_EQ(run.throughput, 0.5);
  EXPECT_DOUBLE_EQ(run.mean_in_flight, 10.0);
  EXPECT_DOUBLE_EQ(run.derived_latency, 20.0);
  ASSERT_TRUE(run.has_report_latency);
  EXPECT_NEAR(run.little_mismatch_pct, 100.0 * 1.0 / 21.0, 1e-9);
  EXPECT_TRUE(run.little_ok);  // 4.8% < default 10% tolerance
  EXPECT_TRUE(run.stream_conserved);
  EXPECT_TRUE(run.cross_checked);
  EXPECT_TRUE(run.cross_conserved);
  EXPECT_EQ(result.exit_code(), 0);
}

TEST(Analyze, LittleMismatchIsInformationalOnly) {
  SnapshotStream stream;
  std::string error;
  ASSERT_TRUE(parse_snapshot_stream(analytic_stream(), stream, error));
  FlatReport report;
  ASSERT_TRUE(flatten_json(
      "{\"paths\":{\"unit\":{\"stats\":{\"unit\":{\"completions\":500,"
      "\"avg_latency_cycles\":40}}}}}",
      report, error));
  const AnalysisResult result =
      analyze_stream(report, stream, AnalysisOptions{});
  ASSERT_EQ(result.runs.size(), 1u);
  EXPECT_FALSE(result.runs[0].little_ok);  // 50% off...
  EXPECT_EQ(result.exit_code(), 0);        // ...but never gates the exit
}

TEST(Analyze, StreamAuditCatchesTamperedFooter) {
  std::string text = analytic_stream();
  const std::string::size_type at = text.find("\"injected\":510");
  ASSERT_NE(at, std::string::npos);
  text.replace(at, 14, "\"injected\":511");
  SnapshotStream stream;
  std::string error;
  ASSERT_TRUE(parse_snapshot_stream(text, stream, error)) << error;
  const AnalysisResult result =
      analyze_stream(FlatReport{}, stream, AnalysisOptions{});
  ASSERT_EQ(result.runs.size(), 1u);
  EXPECT_FALSE(result.runs[0].stream_conserved);
  EXPECT_EQ(result.exit_code(), 1);
}

TEST(Analyze, CrossAuditCatchesDisagreeingReport) {
  SnapshotStream stream;
  std::string error;
  ASSERT_TRUE(parse_snapshot_stream(analytic_stream(), stream, error));
  FlatReport report;
  ASSERT_TRUE(flatten_json(
      "{\"paths\":{\"unit\":{\"stats\":{\"unit\":{\"completions\":499}}}}}",
      report, error));
  const AnalysisResult result =
      analyze_stream(report, stream, AnalysisOptions{});
  ASSERT_EQ(result.runs.size(), 1u);
  EXPECT_TRUE(result.runs[0].cross_checked);
  EXPECT_FALSE(result.runs[0].cross_conserved);
  EXPECT_EQ(result.exit_code(), 1);
}

TEST(Analyze, WatchdogLineDrivesTheVerdict) {
  std::string text =
      "{\"schema\":\"mac3d-snapshot/1\",\"period\":100}\n"
      "{\"run\":\"unit\"}\n"
      "{\"cycle\":100,\"counters\":{\"injected\":10},\"in_flight\":10}\n"
      "{\"watchdog\":\"fired\",\"cycle\":400,\"stalled_windows\":3,"
      "\"threshold_windows\":3}\n"
      "{\"end\":\"unit\",\"cycle\":400,\"windows\":1,\"injected\":10,"
      "\"completions\":0,\"in_flight_at_end\":10}\n";
  SnapshotStream stream;
  std::string error;
  ASSERT_TRUE(parse_snapshot_stream(text, stream, error)) << error;
  ASSERT_EQ(stream.runs.size(), 1u);
  EXPECT_TRUE(stream.runs[0].watchdog_fired);
  EXPECT_EQ(stream.runs[0].watchdog_cycle, 400u);
  const AnalysisResult result =
      analyze_stream(FlatReport{}, stream, AnalysisOptions{});
  EXPECT_TRUE(result.watchdog_fired);
  EXPECT_EQ(result.exit_code(), 1);
  EXPECT_NE(render_analysis(result, AnalysisOptions{}).find("STALLED"),
            std::string::npos);
}

TEST(Analyze, CriticalStageRankedFromCensusDeltas) {
  const std::string text =
      "{\"schema\":\"mac3d-snapshot/1\",\"period\":100}\n"
      "{\"run\":\"unit\"}\n"
      "{\"cycle\":100,\"counters\":{\"completions\":10,\"injected\":10},"
      "\"in_flight\":0,\"census\":{\"node0.arq\":90,\"node0.banks\":40}}\n"
      "{\"cycle\":200,\"counters\":{\"completions\":10,\"injected\":10},"
      "\"in_flight\":0,\"census\":{\"node0.arq\":70,\"node0.banks\":80}}\n"
      "{\"cycle\":300,\"counters\":{\"completions\":10,\"injected\":10},"
      "\"in_flight\":0,\"census\":{\"node0.arq\":95}}\n"
      "{\"end\":\"unit\",\"cycle\":300,\"windows\":3,\"injected\":30,"
      "\"completions\":30,\"in_flight_at_end\":0}\n";
  SnapshotStream stream;
  std::string error;
  ASSERT_TRUE(parse_snapshot_stream(text, stream, error)) << error;
  const AnalysisResult result =
      analyze_stream(FlatReport{}, stream, AnalysisOptions{});
  ASSERT_EQ(result.runs.size(), 1u);
  const RunAnalysis& run = result.runs[0];
  ASSERT_EQ(run.windows.size(), 3u);
  EXPECT_EQ(run.windows[0].critical_stage, "node0.arq");
  EXPECT_EQ(run.windows[1].critical_stage, "node0.banks");
  EXPECT_EQ(run.windows[2].critical_stage, "node0.arq");
  EXPECT_EQ(run.critical_component, "node0.arq");
  EXPECT_EQ(run.critical_windows, 2u);
  EXPECT_DOUBLE_EQ(run.windows[0].critical_utilization, 0.9);
}

TEST(Analyze, ParserRejectsMalformedStreams) {
  SnapshotStream stream;
  std::string error;
  EXPECT_FALSE(parse_snapshot_stream("{\"cycle\":5}\n", stream, error));
  EXPECT_NE(error.find("line 1"), std::string::npos);
  EXPECT_FALSE(parse_snapshot_stream(
      "{\"schema\":\"mac3d-snapshot/2\",\"period\":10}\n", stream, error));
  // A window before any run marker is an orphan.
  EXPECT_FALSE(parse_snapshot_stream(
      "{\"schema\":\"mac3d-snapshot/1\",\"period\":10}\n"
      "{\"cycle\":10,\"counters\":{},\"in_flight\":0}\n",
      stream, error));
  // Footer missing a required field.
  EXPECT_FALSE(parse_snapshot_stream(
      "{\"schema\":\"mac3d-snapshot/1\",\"period\":10}\n"
      "{\"run\":\"x\"}\n"
      "{\"end\":\"x\",\"cycle\":10,\"windows\":1}\n",
      stream, error));
  EXPECT_FALSE(parse_snapshot_stream("not json\n", stream, error));
}

TEST(Analyze, JsonTwinCarriesTheSchema) {
  SnapshotStream stream;
  std::string error;
  ASSERT_TRUE(parse_snapshot_stream(analytic_stream(), stream, error));
  const AnalysisResult result =
      analyze_stream(FlatReport{}, stream, AnalysisOptions{});
  const std::string json = analysis_json(result, AnalysisOptions{});
  EXPECT_NE(json.find("\"schema\":\"mac3d-analysis/1\""), std::string::npos);
  EXPECT_NE(json.find("\"derived_latency_cycles\""), std::string::npos);
  FlatReport twin;
  EXPECT_TRUE(flatten_json(json, twin, error)) << error;
}

}  // namespace
}  // namespace mac3d
