// Unit tests: physical address decomposition (paper Fig. 5).
#include <gtest/gtest.h>

#include <set>

#include "common/config.hpp"
#include "mem/address_map.hpp"

namespace mac3d {
namespace {

class AddressMapTest : public ::testing::Test {
 protected:
  SimConfig config_;
  AddressMap map_{config_};
};

TEST_F(AddressMapTest, RowNumberIsAddrOverRowBytes) {
  EXPECT_EQ(map_.row_of(0x0), 0u);
  EXPECT_EQ(map_.row_of(0xFF), 0u);
  EXPECT_EQ(map_.row_of(0x100), 1u);
  EXPECT_EQ(map_.row_of(0xA00), 0xAu);
}

TEST_F(AddressMapTest, FlitIdUsesBits4To7) {
  // Paper Sec. 4.1: bits 0..3 are the FLIT offset, bits 4..7 the FLIT id.
  EXPECT_EQ(map_.flit_of(0x00), 0u);
  EXPECT_EQ(map_.flit_of(0x0F), 0u);
  EXPECT_EQ(map_.flit_of(0x10), 1u);
  EXPECT_EQ(map_.flit_of(0x50), 5u);  // paper Fig. 6 example
  EXPECT_EQ(map_.flit_of(0xF0), 15u);
  // FLIT id is relative to the row: next row starts at FLIT 0 again.
  EXPECT_EQ(map_.flit_of(0x100), 0u);
}

TEST_F(AddressMapTest, RowBaseInvertsRowOf) {
  for (std::uint64_t row : {0ull, 1ull, 12345ull, (8ull << 30) / 256 - 1}) {
    EXPECT_EQ(map_.row_of(map_.row_base(row)), row);
  }
}

TEST_F(AddressMapTest, VaultsInterleaveAtRowGranularity) {
  // Consecutive rows land in consecutive vaults (Sec. 2.2).
  for (std::uint64_t row = 0; row < 64; ++row) {
    EXPECT_EQ(map_.vault_of(row), row % 32);
  }
}

TEST_F(AddressMapTest, BanksCycleAfterVaults) {
  EXPECT_EQ(map_.bank_of(0), 0u);
  EXPECT_EQ(map_.bank_of(31), 0u);
  EXPECT_EQ(map_.bank_of(32), 1u);
  EXPECT_EQ(map_.bank_of(32 * 15 + 5), 15u);
  EXPECT_EQ(map_.bank_of(32 * 16), 0u);  // wraps after 16 banks
}

TEST_F(AddressMapTest, GlobalBankIsUniquePerVaultBankPair) {
  std::set<std::uint32_t> seen;
  for (std::uint64_t row = 0; row < 32ull * 16; ++row) {
    seen.insert(map_.global_bank(row));
  }
  EXPECT_EQ(seen.size(), 512u);  // 8 GB cube: 512 banks (Sec. 2.2.1)
}

TEST_F(AddressMapTest, DecodeAgreesWithFieldAccessors) {
  const Address addr = 0x1A2B3C4D5ull;
  const DecodedAddress decoded = map_.decode(addr);
  EXPECT_EQ(decoded.row, map_.row_of(addr));
  EXPECT_EQ(decoded.flit, map_.flit_of(addr));
  EXPECT_EQ(decoded.flit_off, addr & 0xF);
  EXPECT_EQ(decoded.vault, map_.vault_of(decoded.row));
  EXPECT_EQ(decoded.bank, map_.bank_of(decoded.row));
}

TEST_F(AddressMapTest, BankRowReconstructsRowNumber) {
  const std::uint64_t row = 0x123456;
  const DecodedAddress decoded = map_.decode(map_.row_base(row));
  EXPECT_EQ(decoded.bank_row * 512 + decoded.bank * 32 + decoded.vault, row);
}

TEST_F(AddressMapTest, NodeOfSplitsByCapacity) {
  EXPECT_EQ(map_.node_of(0), 0);
  EXPECT_EQ(map_.node_of((8ull << 30) - 1), 0);
  EXPECT_EQ(map_.node_of(8ull << 30), 1);
  EXPECT_EQ(map_.node_of(3 * (8ull << 30) + 42), 3);
}

TEST_F(AddressMapTest, LocalAddrStripsNodeBits) {
  EXPECT_EQ(map_.local_addr((8ull << 30) + 0x1234), 0x1234u);
  EXPECT_EQ(map_.local_addr(0x1234), 0x1234u);
}

TEST(AddressMapCustom, HbmGeometryRow1K) {
  // Sec. 4.3: HBM has 1 KB pages — 64 FLITs per row.
  SimConfig config;
  config.row_bytes = 1024;
  config.builder_max_bytes = 1024;
  AddressMap map(config);
  EXPECT_EQ(map.flits_per_row(), 64u);
  EXPECT_EQ(map.flit_of(1023), 63u);
  EXPECT_EQ(map.row_of(1024), 1u);
}

TEST(AddressMapCustom, SmallCubeGeometry) {
  SimConfig config;
  config.hmc_capacity = 1ull << 30;
  config.vaults = 16;
  config.banks_per_vault = 8;
  config.validate();
  AddressMap map(config);
  EXPECT_EQ(map.vault_of(17), 1u);
  EXPECT_EQ(map.bank_of(16), 1u);
  EXPECT_EQ(map.node_of(1ull << 30), 1);
}

}  // namespace
}  // namespace mac3d
