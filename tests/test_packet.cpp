// Unit tests: HMC packet accounting (paper Sec. 2.2.2, Eq. 1, Fig. 3).
#include <gtest/gtest.h>

#include "mem/packet.hpp"

namespace mac3d {
namespace {

TEST(Packet, DataFlitsRoundUp) {
  EXPECT_EQ(data_flits(16), 1u);
  EXPECT_EQ(data_flits(17), 2u);
  EXPECT_EQ(data_flits(64), 4u);
  EXPECT_EQ(data_flits(256), 16u);
}

TEST(Packet, ReadRequestIsControlOnly) {
  // A read request carries one FLIT of header+tail, no payload.
  EXPECT_EQ(request_flits(16, false), 1u);
  EXPECT_EQ(request_flits(256, false), 1u);
}

TEST(Packet, ReadResponseCarriesData) {
  EXPECT_EQ(response_flits(16, false), 2u);    // control + 1 data FLIT
  EXPECT_EQ(response_flits(256, false), 17u);  // control + 16 data FLITs
}

TEST(Packet, WriteMirrorsRead) {
  EXPECT_EQ(request_flits(128, true), 9u);  // control + 8 data FLITs
  EXPECT_EQ(response_flits(128, true), 1u);  // write ack: control only
}

TEST(Packet, EveryAccessPays32BytesControl) {
  // Paper Sec. 2.2.2: control is 16 B per packet, 32 B per access,
  // independent of payload and of direction.
  for (std::uint32_t size : {16u, 32u, 64u, 128u, 256u}) {
    EXPECT_EQ(access_link_bytes(size, false), size + kAccessOverheadBytes);
    EXPECT_EQ(access_link_bytes(size, true), size + kAccessOverheadBytes);
  }
}

TEST(Packet, Eq1BandwidthEfficiency) {
  // Fig. 3 values.
  EXPECT_NEAR(bandwidth_efficiency(16), 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(bandwidth_efficiency(32), 0.5, 1e-9);
  EXPECT_NEAR(bandwidth_efficiency(64), 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(bandwidth_efficiency(128), 0.8, 1e-9);
  EXPECT_NEAR(bandwidth_efficiency(256), 8.0 / 9.0, 1e-9);
}

TEST(Packet, OverheadIsComplementOfEfficiency) {
  for (std::uint32_t size = 16; size <= 256; size *= 2) {
    EXPECT_NEAR(bandwidth_efficiency(size) + overhead_fraction(size), 1.0,
                1e-12);
  }
}

TEST(Packet, PaperImprovementFactor) {
  // "Bandwidth efficiency for 256B requests ... improvement of a factor of
  // 2.67 when compared with 16B requests."
  EXPECT_NEAR(bandwidth_efficiency(256) / bandwidth_efficiency(16), 2.6667,
              1e-3);
}

TEST(Packet, Fig2ByteAccounting) {
  // Sixteen raw 16 B loads: 768 B total, 512 B control.
  const std::uint64_t raw_total = 16 * access_link_bytes(16, false);
  EXPECT_EQ(raw_total, 768u);
  EXPECT_EQ(raw_total - 16 * 16, 512u);
  // One coalesced 256 B request: 288 B total, 32 B control.
  EXPECT_EQ(access_link_bytes(256, false), 288u);
}

}  // namespace
}  // namespace mac3d
