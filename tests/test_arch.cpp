// Unit tests: the node architecture — SPM, request router, core model,
// interconnect, node and multi-node system.
#include <gtest/gtest.h>

#include "arch/core_model.hpp"
#include "arch/interconnect.hpp"
#include "arch/request_router.hpp"
#include "arch/spm.hpp"
#include "arch/system.hpp"

namespace mac3d {
namespace {

// -------------------------------------------------------------------- SPM
TEST(Spm, WindowsAreDisjointPerCore) {
  SimConfig config;
  Spm a(config, 0, 0);
  Spm b(config, 0, 1);
  Spm c(config, 1, 0);
  EXPECT_EQ(a.size(), 1u << 20);
  EXPECT_FALSE(a.contains(b.base()));
  EXPECT_FALSE(b.contains(c.base()));
  EXPECT_TRUE(a.contains(a.base() + 100));
  EXPECT_FALSE(a.contains(a.base() + a.size()));
}

TEST(Spm, SpmAddressesAreAboveAnyCubeAddress) {
  SimConfig config;
  Spm spm(config, 0, 0);
  EXPECT_GE(spm.base(), Address{1} << 48);
}

TEST(Spm, LatencyMatchesTable1) {
  SimConfig config;
  Spm spm(config, 0, 0);
  // 1 ns at 3.3 GHz ~ 3 cycles.
  EXPECT_EQ(spm.latency(), 3u);
  EXPECT_EQ(spm.access(10, false), 13u);
  EXPECT_EQ(spm.accesses(), 1u);
}

// --------------------------------------------------------------- router
TEST(RequestRouter, ClassifiesLocalAndRemote) {
  SimConfig config;
  AddressMap map(config);
  RequestRouter router(config, map, /*node=*/0);
  RawRequest local;
  local.addr = 0x1000;
  RawRequest remote;
  remote.addr = (8ull << 30) + 0x1000;  // node 1
  ASSERT_TRUE(router.route_local(local));
  ASSERT_TRUE(router.route_local(remote));
  EXPECT_EQ(router.local_queue().size(), 1u);
  EXPECT_EQ(router.global_queue().size(), 1u);
  EXPECT_EQ(router.remote_out(), 1u);
}

TEST(RequestRouter, FencesStayLocal) {
  SimConfig config;
  AddressMap map(config);
  RequestRouter router(config, map, 0);
  RawRequest fence;
  fence.op = MemOp::kFence;
  ASSERT_TRUE(router.route_local(fence));
  EXPECT_EQ(router.local_queue().size(), 1u);
}

TEST(RequestRouter, RemoteQueueAndRoundRobin) {
  SimConfig config;
  AddressMap map(config);
  RequestRouter router(config, map, 0);
  RawRequest a;
  a.addr = 0x100;
  a.tid = 1;
  RawRequest b;
  b.addr = 0x200;
  b.tid = 2;
  ASSERT_TRUE(router.route_local(a));
  ASSERT_TRUE(router.route_remote(b));
  EXPECT_TRUE(router.has_mac_request());
  const ThreadId first = router.pop_mac_request().tid;
  const ThreadId second = router.pop_mac_request().tid;
  EXPECT_NE(first, second);
  EXPECT_FALSE(router.has_mac_request());
}

TEST(RequestRouter, BackPressureWhenFull) {
  SimConfig config;
  config.queue_depth = 2;
  AddressMap map(config);
  RequestRouter router(config, map, 0);
  RawRequest request;
  request.addr = 0x100;
  ASSERT_TRUE(router.route_local(request));
  ASSERT_TRUE(router.route_local(request));
  EXPECT_FALSE(router.route_local(request));
}

// ----------------------------------------------------------- interconnect
TEST(Interconnect, DeliversAfterHopLatency) {
  SimConfig config;
  Interconnect fabric(config, 2);
  RawRequest request;
  request.addr = 0x42;
  fabric.send_request(request, 1, 100);
  EXPECT_TRUE(fabric.deliver_requests(1, 100).empty());
  EXPECT_TRUE(
      fabric.deliver_requests(1, 100 + config.remote_hop_cycles - 1).empty());
  const auto arrived =
      fabric.deliver_requests(1, 100 + config.remote_hop_cycles);
  ASSERT_EQ(arrived.size(), 1u);
  EXPECT_EQ(arrived[0].addr, 0x42u);
  EXPECT_TRUE(fabric.idle());
}

TEST(Interconnect, LanesAreIndependentPerDestination) {
  SimConfig config;
  Interconnect fabric(config, 3);
  RawRequest request;
  fabric.send_request(request, 1, 0);
  fabric.send_request(request, 2, 0);
  EXPECT_EQ(fabric.deliver_requests(1, 10000).size(), 1u);
  EXPECT_EQ(fabric.deliver_requests(2, 10000).size(), 1u);
  EXPECT_EQ(fabric.messages(), 2u);
}

TEST(Interconnect, CompletionsTravelToo) {
  SimConfig config;
  Interconnect fabric(config, 2);
  CompletedAccess done;
  done.target.tid = 7;
  fabric.send_completion(done, 0, 0);
  EXPECT_EQ(fabric.next_delivery(), config.remote_hop_cycles);
  const auto arrived =
      fabric.deliver_completions(0, config.remote_hop_cycles);
  ASSERT_EQ(arrived.size(), 1u);
  EXPECT_EQ(arrived[0].target.tid, 7);
}

// ------------------------------------------------------------- core model
TEST(CoreModel, SpmAccessesCompleteLocally) {
  SimConfig config;
  AddressMap map(config);
  RequestRouter router(config, map, 0);
  CoreModel core(config, 0, 0);
  Spm spm(config, 0, 0);
  std::vector<MemRecord> records = {
      MemRecord{spm.base() + 64, MemOp::kLoad, 8, 0},
      MemRecord{0x1000, MemOp::kLoad, 8, 0},
  };
  core.add_thread(0, &records);
  core.try_issue(0, router);  // SPM access, nothing routed
  EXPECT_FALSE(router.has_mac_request());
  EXPECT_EQ(core.spm_accesses(), 1u);
  // After the SPM latency the main-memory access goes out.
  core.try_issue(10, router);
  EXPECT_TRUE(router.has_mac_request());
  EXPECT_EQ(core.issued(), 1u);
  EXPECT_FALSE(core.finished());
  core.on_complete(0, 500);
  EXPECT_TRUE(core.finished());
}

TEST(CoreModel, ThreadsInterleaveWhileOthersStall) {
  SimConfig config;
  AddressMap map(config);
  RequestRouter router(config, map, 0);
  CoreModel core(config, 0, 0);
  std::vector<MemRecord> r0 = {MemRecord{0x1000, MemOp::kLoad, 8, 0}};
  std::vector<MemRecord> r1 = {MemRecord{0x2000, MemOp::kLoad, 8, 0}};
  core.add_thread(0, &r0);
  core.add_thread(1, &r1);
  core.try_issue(0, router);
  core.try_issue(1, router);  // thread 0 stalled; thread 1 proceeds
  EXPECT_EQ(core.issued(), 2u);
}

// ----------------------------------------------------------------- system
TEST(System, SingleNodeRunsTraceToCompletion) {
  SimConfig config;
  config.cores = 2;
  MemoryTrace trace(4);
  for (std::uint32_t t = 0; t < 4; ++t) {
    for (int i = 0; i < 5; ++i) {
      trace.load(static_cast<ThreadId>(t),
                 static_cast<Address>(i) * 256 + t * 16);
    }
    trace.fence(static_cast<ThreadId>(t));
  }
  System system(config);
  system.attach_trace(trace);
  const SystemRunSummary summary = system.run(2'000'000);
  EXPECT_TRUE(summary.completed);
  EXPECT_EQ(summary.completions, trace.size());
  EXPECT_GT(summary.avg_latency_cycles, 0.0);
}

TEST(System, MultiNodeRoutesRemoteTraffic) {
  SimConfig config;
  config.nodes = 2;
  config.cores = 2;
  MemoryTrace trace(4);
  // Every thread touches BOTH nodes' memory.
  for (std::uint32_t t = 0; t < 4; ++t) {
    trace.load(static_cast<ThreadId>(t), 0x1000 + t * 16);
    trace.load(static_cast<ThreadId>(t), (8ull << 30) + 0x1000 + t * 16);
  }
  System system(config);
  system.attach_trace(trace);
  const SystemRunSummary summary = system.run(5'000'000);
  EXPECT_TRUE(summary.completed);
  EXPECT_EQ(summary.completions, trace.size());
  EXPECT_GT(system.fabric().messages(), 0u);
  // Both cubes saw traffic.
  EXPECT_GT(system.node(0).device().stats().requests, 0u);
  EXPECT_GT(system.node(1).device().stats().requests, 0u);
}

TEST(System, SpmTrafficNeverReachesTheCube) {
  SimConfig config;
  config.cores = 1;
  MemoryTrace trace(1);
  const Address spm_base = spm_window_base(config, 0, 0);
  for (int i = 0; i < 10; ++i) {
    trace.load(0, spm_base + static_cast<Address>(i) * 8);
  }
  System system(config);
  system.attach_trace(trace);
  const SystemRunSummary summary = system.run(100'000);
  EXPECT_TRUE(summary.completed);
  EXPECT_EQ(system.node(0).device().stats().requests, 0u);
}

TEST(System, HitsCycleCapGracefully) {
  SimConfig config;
  config.cores = 1;
  MemoryTrace trace(1);
  for (int i = 0; i < 100; ++i) trace.load(0, static_cast<Address>(i) * 256);
  System system(config);
  system.attach_trace(trace);
  const SystemRunSummary summary = system.run(10);  // far too few cycles
  EXPECT_FALSE(summary.completed);
  EXPECT_EQ(summary.cycles, 10u);
}

}  // namespace
}  // namespace mac3d
