// Figure 13: measured bandwidth efficiency (Eq. 1 over the whole run) of
// the coalesced transactions vs the 16 B raw requests.
// Paper: 70.35% average with MAC vs 33.33% raw — a >2x improvement;
// control overhead falls from 66.67% to 29.65%.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace mac3d;
  bench::Session session(argc, argv, "fig13_bw_efficiency");
  print_banner("Figure 13: bandwidth efficiency, MAC vs raw");
  SuiteOptions options = default_suite_options();
  const auto runs = run_suite(options);

  Table table({"workload", "raw", "MAC", "improvement"});
  double sum = 0.0;
  for (const WorkloadRun& run : runs) {
    const double raw = run.raw.bandwidth_efficiency();
    const double mac = run.mac.bandwidth_efficiency();
    sum += mac;
    table.add_row({bench::label(run.name), Table::pct(raw), Table::pct(mac),
                   Table::fmt(mac / raw, 2) + "x"});
  }
  const double avg = sum / static_cast<double>(runs.size());
  session.set_number("mean_bandwidth_efficiency", avg);
  for (const WorkloadRun& run : runs) {
    session.set_number("bandwidth_efficiency." + run.name,
                       run.mac.bandwidth_efficiency());
  }
  table.print();
  print_reference("average MAC bandwidth efficiency", "70.35%",
                  Table::pct(avg));
  print_reference("raw 16 B requests", "33.33%", "see raw column");
  print_reference("control overhead with MAC", "29.65%",
                  Table::pct(1.0 - avg));
  return session.finish();
}
