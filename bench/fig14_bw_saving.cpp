// Figure 14: bandwidth saved by request aggregation — link bytes the raw
// path transfers that the MAC path does not (mostly per-packet control).
// Paper (full-size inputs): 22.76 GB average per workload. Absolute bytes
// scale with trace length; the per-workload shape and the saved fraction
// are the scale-free comparison points.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace mac3d;
  bench::Session session(argc, argv, "fig14_bw_saving");
  print_banner("Figure 14: bandwidth saving");
  SuiteOptions options = default_suite_options();
  const auto runs = run_suite(options);

  Table table({"workload", "raw link bytes", "MAC link bytes", "saved",
               "saved %"});
  std::uint64_t total = 0;
  for (const WorkloadRun& run : runs) {
    const std::uint64_t saved = bandwidth_saving_bytes(run.raw, run.mac);
    total += saved;
    const double fraction =
        run.raw.link_bytes == 0
            ? 0.0
            : static_cast<double>(saved) /
                  static_cast<double>(run.raw.link_bytes);
    table.add_row({bench::label(run.name), Table::bytes(run.raw.link_bytes),
                   Table::bytes(run.mac.link_bytes), Table::bytes(saved),
                   Table::pct(fraction)});
  }
  table.print();
  std::printf("average saved per workload: %s\n",
              Table::bytes(total / runs.size()).c_str());
  print_reference("paper average (full-size inputs)", "22.76 GB",
                  "scaled run above");
  return session.finish();
}
