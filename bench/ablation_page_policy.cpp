// Ablation (paper Sec. 2.2.1): page policy. HMC mandates closed-page —
// short 256 B rows make the row buffer cheap to re-open, and keeping the
// 512 banks' rows powered for harvesting would cost too much energy —
// so DDR-style controller-side row-hit aggregation is unavailable and
// coalescing must move to the processor side (the MAC). This sweep makes
// the trade-off concrete: a *hypothetical* open-page HMC would capture
// the same row locality the MAC exploits (high hit rates below, and
// competitive latency), but it must keep rows open across hundreds of
// banks and still pays the full 32 B control overhead on every 16 B
// request — the bandwidth dimension only coalescing can fix.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace mac3d;
  bench::Session session(argc, argv, "ablation_page_policy");
  print_banner("Ablation: page policy (Sec. 2.2.1)");

  SuiteOptions closed = default_suite_options();  // closed page (real HMC)
  SuiteOptions open = closed;
  open.config.open_page = true;
  open.run_mac = false;  // open-page raw path only

  const auto closed_runs = run_suite(closed);
  const auto open_runs = run_suite(open);

  Table table({"workload", "open-page row hits", "raw lat (open)",
               "raw lat (closed)", "MAC lat (closed)"});
  for (std::size_t i = 0; i < closed_runs.size(); ++i) {
    // Row-hit rate of the open-page raw run.
    const double hit_rate =
        open_runs[i].raw.packets == 0
            ? 0.0
            : open_runs[i].raw.row_hit_rate;
    table.add_row({bench::label(closed_runs[i].name), Table::pct(hit_rate),
                   Table::fmt(open_runs[i].raw.device_latency_avg, 0) + " cy",
                   Table::fmt(closed_runs[i].raw.device_latency_avg, 0) +
                       " cy",
                   Table::fmt(closed_runs[i].mac.device_latency_avg, 0) +
                       " cy"});
  }
  table.print();
  std::printf(
      "A hypothetical open-page HMC captures the row locality too -- but\n"
      "it must keep rows open across up to 512 banks (the power cost that\n"
      "makes HMC closed-page, Sec. 2.2.1) and its 16B requests still pay\n"
      "the 32B control overhead per access (bandwidth efficiency pinned\n"
      "at 33%%). Closed-page + MAC reaches ~2/3 bandwidth efficiency and\n"
      "comparable latency without any open rows.\n");
  return session.finish();
}
