// Ablation (paper Sec. 2.3): the MAC's variable-size packets vs the
// conventional fixed-64 B MSHR-style coalescer and the raw path. The MSHR
// baseline merges outstanding requests to the same 64 B block but always
// dispatches cache-line-sized transactions, so it cannot reach the large
// packet sizes the 3D-stacked memory favours — and a 64 B packet still
// pays 33% control overhead (Fig. 3).
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace mac3d;
  bench::Session session(argc, argv, "ablation_mshr_vs_mac");
  print_banner("Ablation: MAC vs MSHR-64B vs raw");
  SuiteOptions options = default_suite_options();
  options.run_mshr = true;
  const auto runs = run_suite(options);

  // Note: the MSHR file throttles intake while full (stall-on-allocate),
  // which keeps its device latencies artificially low; the makespan
  // columns show the throughput cost of that throttling.
  Table table({"workload", "eff MAC", "eff MSHR", "bw MAC", "bw MSHR",
               "makespan MAC", "makespan MSHR"});
  double mac_sum = 0.0;
  double mshr_sum = 0.0;
  for (const WorkloadRun& run : runs) {
    mac_sum += memory_speedup(run.raw, run.mac);
    mshr_sum += memory_speedup(run.raw, run.mshr);
    table.add_row({bench::label(run.name),
                   Table::pct(run.mac.coalescing_efficiency()),
                   Table::pct(run.mshr.coalescing_efficiency()),
                   Table::pct(run.mac.bandwidth_efficiency()),
                   Table::pct(run.mshr.bandwidth_efficiency()),
                   Table::count(run.mac.makespan) + " cy",
                   Table::count(run.mshr.makespan) + " cy"});
  }
  table.print();
  std::printf("average transaction-latency speedup: MAC %s vs MSHR %s\n",
              Table::pct(mac_sum / static_cast<double>(runs.size())).c_str(),
              Table::pct(mshr_sum / static_cast<double>(runs.size())).c_str());
  std::printf(
      "MSHR packets are fixed 64 B (bandwidth efficiency cap %s); the MAC\n"
      "adapts 64-256 B per row (cap %s).\n",
      Table::pct(64.0 / 96.0).c_str(), Table::pct(256.0 / 288.0).c_str());
  return session.finish();
}
