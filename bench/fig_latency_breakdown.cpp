// Per-stage latency decomposition (docs/OBSERVABILITY.md §latency):
// where a request's cycles actually go on the raw and MAC paths. The
// LatencyDecomposer attributes the delta between consecutive stamped
// stages to the earlier stage's residency histogram, so the table reads
// as "time spent in <stage>", the dual of the run report's per-stage
// "time to reach" histograms, plus a critical-stage attribution (which
// stage dominated each request end to end).
#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "obs/latency.hpp"
#include "sim/driver.hpp"

int main(int argc, char** argv) {
  using namespace mac3d;
  bench::Session session(argc, argv, "fig_latency_breakdown");
  print_banner("Per-stage latency decomposition: raw vs MAC");

  const SuiteOptions base = default_suite_options();
  const Workload* workload = find_workload("sg");
  WorkloadParams params;
  params.threads = base.threads;
  params.scale = base.scale;
  params.config = base.config;
  const MemoryTrace trace = workload->trace(params);

  for (const char* path : {"raw", "mac"}) {
    LatencyDecomposer decomposer;
    DriveOptions drive;
    drive.sink = &decomposer;
    const DriverResult result =
        std::string(path) == "raw"
            ? run_raw(trace, base.config, base.threads, drive)
            : run_mac(trace, base.config, base.threads, drive);
    std::printf("\n[%s] %llu packets\n%s", path,
                static_cast<unsigned long long>(result.packets),
                decomposer.to_table().c_str());

    // Baseline-gated headline numbers: quantiles and critical-stage
    // shares per stamped stage, all in simulated cycles (deterministic).
    const std::string prefix = std::string(path) + "_";
    session.set_number(prefix + "requests",
                       static_cast<double>(decomposer.completed_requests()));
    for (std::size_t s = 0; s < kStageCount; ++s) {
      const Stage stage = static_cast<Stage>(s);
      const Histogram& hist = decomposer.stage_residency(stage);
      if (hist.count() == 0) continue;
      const std::string key = prefix + std::string(to_string(stage));
      session.set_number(key + "_p50",
                         static_cast<double>(hist.quantile(0.50)));
      session.set_number(key + "_p95",
                         static_cast<double>(hist.quantile(0.95)));
      session.set_number(key + "_p99",
                         static_cast<double>(hist.quantile(0.99)));
      session.set_number(key + "_critical",
                         static_cast<double>(decomposer.critical_count(stage)));
    }
  }
  return session.finish();
}
