// Figure 17: memory-system speedup — the reduction in the execution
// latency of the HMC memory transactions, measured (as in the paper) by
// the device model with and without MAC over identical traces.
// Paper: 60.73% average; above 70% for MG, GRAPPOLO, SG and SPARSELU.
// The makespan view (time to drain the whole trace) is shown alongside.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace mac3d;
  bench::Session session(argc, argv, "fig17_speedup");
  print_banner("Figure 17: memory system speedup");
  SuiteOptions options = default_suite_options();
  const auto runs = run_suite(options);

  Table table({"workload", "transaction-latency reduction",
               "makespan reduction", "avg latency raw", "avg latency MAC"});
  double sum = 0.0;
  for (const WorkloadRun& run : runs) {
    const double speedup = memory_speedup(run.raw, run.mac);
    sum += speedup;
    table.add_row({bench::label(run.name), Table::pct(speedup),
                   Table::pct(makespan_speedup(run.raw, run.mac)),
                   Table::fmt(run.raw.device_latency_avg, 0) + " cy",
                   Table::fmt(run.mac.device_latency_avg, 0) + " cy"});
  }
  table.print();
  session.set_number("average_speedup",
                     sum / static_cast<double>(runs.size()));
  print_reference("average speedup", "60.73%",
                  Table::pct(sum / static_cast<double>(runs.size())));
  print_reference("top performers", "> 70% (MG, GRAPPOLO, SG, SPARSELU)",
                  "see table");
  return session.finish();
}
