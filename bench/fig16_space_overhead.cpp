// Figure 16: space overhead of the Request Aggregator vs ARQ entries
// (512 B at 8 entries to 16 KB at 256 entries, O(n) comparators), plus the
// fixed 14 B Request Builder (FLIT map + FLIT table) and the paper's total
// of 2062 B for the 32-entry design point.
#include <cstdio>

#include "bench_common.hpp"
#include "mac/coalescer.hpp"
#include "mem/hmc_device.hpp"

int main(int argc, char** argv) {
  using namespace mac3d;
  bench::Session session(argc, argv, "fig16_space_overhead");
  print_banner("Figure 16: MAC space overhead");

  Table table({"ARQ entries", "ARQ storage", "comparators", "builder",
               "total MAC"});
  for (std::uint32_t entries : {8u, 16u, 32u, 64u, 128u, 256u}) {
    SimConfig config;
    config.apply_env();
    config.arq_entries = entries;
    HmcDevice device(config);
    MacCoalescer mac(config, device);
    table.add_row({std::to_string(entries),
                   Table::bytes(mac.arq().storage_bytes()),
                   std::to_string(mac.arq().comparators()),
                   Table::bytes(mac.builder().storage_bytes()),
                   Table::bytes(mac.storage_bytes())});
  }
  table.print();

  SimConfig config;
  HmcDevice device(config);
  MacCoalescer mac(config, device);
  print_reference("ARQ range 8 -> 256 entries", "512 B -> 16 KB",
                  "see table");
  print_reference("request builder (FLIT map + table)", "14 B",
                  Table::bytes(mac.builder().storage_bytes()));
  print_reference("total at 32 entries", "2062 B",
                  Table::bytes(mac.storage_bytes()));
  return session.finish();
}
