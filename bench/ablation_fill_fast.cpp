// Ablation (paper Sec. 4.1): the fill-fast latency-hiding mechanism.
// When armed, requests arriving at a >half-empty ARQ skip the comparators;
// that shortens intake latency after idle periods but suppresses
// aggregation while armed. DESIGN.md explains why the reproduction
// defaults it off.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace mac3d;
  bench::Session session(argc, argv, "ablation_fill_fast");
  print_banner("Ablation: fill-fast latency hiding (Sec. 4.1)");

  Table table({"workload", "eff (fill-fast off)", "eff (fill-fast on)",
               "latency off", "latency on"});

  SuiteOptions off = default_suite_options();
  off.config.fill_fast_enabled = false;
  off.run_raw = false;
  SuiteOptions on = off;
  on.config.fill_fast_enabled = true;
  const auto runs_off = run_suite(off);
  const auto runs_on = run_suite(on);

  for (std::size_t i = 0; i < runs_off.size(); ++i) {
    table.add_row({bench::label(runs_off[i].name),
                   Table::pct(runs_off[i].mac.coalescing_efficiency()),
                   Table::pct(runs_on[i].mac.coalescing_efficiency()),
                   Table::fmt(runs_off[i].mac.avg_latency_cycles, 0) + " cy",
                   Table::fmt(runs_on[i].mac.avg_latency_cycles, 0) + " cy"});
  }
  table.print();
  return session.finish();
}
