// Figure 15: average merged targets per ARQ entry.
// Paper: ~2.13 average across the suite, 3.14 at most — far below the
// 12-target capacity of a 64 B entry, so the entry size is sufficient.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace mac3d;
  bench::Session session(argc, argv, "fig15_targets_per_entry");
  print_banner("Figure 15: average targets per ARQ entry");
  SuiteOptions options = default_suite_options();
  options.run_raw = false;
  const auto runs = run_suite(options);

  SimConfig config = options.config;
  Table table({"workload", "avg targets/entry", "peak entry"});
  double sum = 0.0;
  double best = 0.0;
  for (const WorkloadRun& run : runs) {
    sum += run.mac.avg_targets_per_entry;
    best = std::max(best, run.mac.avg_targets_per_entry);
    table.add_row({bench::label(run.name),
                   Table::fmt(run.mac.avg_targets_per_entry, 2),
                   Table::fmt(run.mac.max_targets_per_entry, 0)});
  }
  table.print();
  std::printf("entry capacity: %u targets (%u B entry, 4.5 B per target)\n",
              config.max_targets_per_entry(), config.arq_entry_bytes);
  print_reference("suite average", "2.13",
                  Table::fmt(sum / static_cast<double>(runs.size()), 2));
  print_reference("largest per-workload average", "3.14", Table::fmt(best, 2));
  return session.finish();
}
