// Figure 11: the impact of the number of ARQ entries on coalescing
// efficiency. Paper: 37.58% -> 56.04% from 8 to 256 entries, with
// strongly diminishing returns (+22.11% to 16, +15.72% to 32, +5.53% to
// 64) — 32 entries is the chosen design point.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace mac3d;
  bench::Session session(argc, argv, "fig11_arq_sweep");
  print_banner("Figure 11: coalescing efficiency vs ARQ entries");
  const std::uint32_t entry_counts[] = {8, 16, 32, 64, 128, 256};

  Table table({"ARQ entries", "mean coalescing efficiency", "gain"});
  double previous = 0.0;
  for (const std::uint32_t entries : entry_counts) {
    SuiteOptions options = default_suite_options();
    options.config.arq_entries = entries;
    options.run_raw = false;
    const bench::SuiteSeries series = bench::run_series(options);
    const double gain =
        previous == 0.0 ? 0.0 : (series.mean_coalescing - previous) /
                                    previous;
    table.add_row({std::to_string(entries),
                   Table::pct(series.mean_coalescing),
                   previous == 0.0 ? std::string("-") : Table::pct(gain)});
    previous = series.mean_coalescing;
  }
  table.print();
  print_reference("range over sweep", "37.58% -> 56.04%", "see table");
  print_reference("diminishing returns past 32 entries", "+5.53% at 64",
                  "see gain column");
  return session.finish();
}
