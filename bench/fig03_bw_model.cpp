// Figure 3: bandwidth efficiency and control overhead vs request size
// (Eq. 1). Pure protocol arithmetic: every HMC access pays 32 B of
// header+tail control regardless of payload.
#include <cstdio>

#include "bench_common.hpp"
#include "mem/packet.hpp"

int main(int argc, char** argv) {
  using namespace mac3d;
  bench::Session session(argc, argv, "fig03_bw_model");
  print_banner("Figure 3: bandwidth efficiency and overhead vs request size");
  Table table({"request size", "bandwidth efficiency", "overhead"});
  for (std::uint32_t size = 16; size <= 256; size *= 2) {
    table.add_row({Table::bytes(size), Table::pct(bandwidth_efficiency(size)),
                   Table::pct(overhead_fraction(size))});
  }
  table.print();
  print_reference("efficiency at 16 B", "33.33%",
                  Table::pct(bandwidth_efficiency(16)));
  print_reference("efficiency at 256 B", "88.89%",
                  Table::pct(bandwidth_efficiency(256)));
  print_reference("256 B / 16 B improvement", "2.67x",
                  Table::fmt(bandwidth_efficiency(256) /
                             bandwidth_efficiency(16)) + "x");
  std::printf(
      "\nFig. 2 example: 16 x 16B requests move %llu B on the links, one\n"
      "coalesced 256B request moves %llu B (paper: 768 B vs 288 B).\n",
      static_cast<unsigned long long>(16 * access_link_bytes(16, false)),
      static_cast<unsigned long long>(access_link_bytes(256, false)));
  return session.finish();
}
