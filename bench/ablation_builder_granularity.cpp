// Ablation (paper Sec. 4.2): the Request Builder's minimum packet
// granularity. The paper picks 64 B as the trade-off between control
// overhead (small packets) and wasted payload bandwidth (large packets);
// this sweep regenerates that trade-off, including the degenerate
// row-sized-packets point the paper argues against in Sec. 2.3.2.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace mac3d;
  bench::Session session(argc, argv, "ablation_builder_granularity");
  print_banner("Ablation: Request Builder minimum packet granularity");

  Table table({"min packet", "groups", "mean eff", "mean bw eff",
               "mean payload utilization"});
  for (const std::uint32_t min_bytes : {16u, 32u, 64u, 128u, 256u}) {
    SuiteOptions options = default_suite_options();
    options.config.builder_min_bytes = min_bytes;
    options.run_raw = false;
    const auto runs = run_suite(options);
    double eff = 0.0;
    double bw = 0.0;
    double util = 0.0;
    for (const WorkloadRun& run : runs) {
      eff += run.mac.coalescing_efficiency();
      bw += run.mac.bandwidth_efficiency();
      // Useful bytes actually requested vs payload moved.
      util += run.mac.data_bytes == 0
                  ? 0.0
                  : static_cast<double>(run.mac.raw_requests) * 8.0 /
                        static_cast<double>(run.mac.data_bytes);
    }
    const auto n = static_cast<double>(runs.size());
    table.add_row({Table::bytes(min_bytes),
                   std::to_string(256 / min_bytes), Table::pct(eff / n),
                   Table::pct(bw / n), Table::pct(util / n)});
  }
  table.print();
  std::printf(
      "Small minimums keep payload utilization high; large ones maximize\n"
      "Eq. 1 bandwidth efficiency but ship unrequested FLITs (Sec. 2.3.2's\n"
      "argument against 256 B cache lines). 64 B is the paper's choice.\n");
  return session.finish();
}
