// Event-driven fast-forward engine speedup on the 4-node sparse system
// (docs/PARALLELISM.md §event-driven engine): run the same sg workload
// under the strict cycle engine (System::run) and the fast-forward
// engine (System::run_event), prove the two summaries bit-identical,
// and measure the wall-clock win.
//
// Baseline gating covers only the deterministic simulated-time fields
// (cycles, requests, completions, visited_cycles, skip_ratio); host
// wall-clock and the measured speedup are printed and reported but the
// committed baseline omits them, and the diff ignores fields missing
// from the baseline.
#include <chrono>
#include <cstdio>
#include <string>

#include "arch/system.hpp"
#include "bench_common.hpp"

namespace {

struct TimedRun {
  mac3d::SystemRunSummary summary;
  double seconds = 0.0;
};

template <typename RunFn>
TimedRun timed(const mac3d::SimConfig& config, const mac3d::MemoryTrace& trace,
               RunFn&& run) {
  mac3d::System system(config);
  system.attach_trace(trace);
  const auto start = std::chrono::steady_clock::now();
  TimedRun out;
  out.summary = run(system);
  out.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mac3d;
  bench::Session session(argc, argv, "engine_fastforward");
  print_banner(
      "Engine fast-forward: strict run() vs event-driven run_event(), "
      "4-node system");

  const SuiteOptions base = default_suite_options();
  SimConfig config = base.config;
  config.nodes = 4;
  config.validate();
  const Workload* workload = find_workload("sg");
  WorkloadParams params;
  params.threads = base.threads;
  params.scale = base.scale;
  params.config = config;
  const MemoryTrace trace = workload->trace(params);

  const TimedRun strict =
      timed(config, trace, [](System& s) { return s.run(); });
  const TimedRun event =
      timed(config, trace, [](System& s) { return s.run_event(); });

  // The fast-forward engine must be bit-identical to the strict engine
  // on everything observable; visited_cycles is the only field allowed
  // (and required) to differ.
  bool equal = true;
  auto check = [&equal](const char* what, const std::string& a,
                        const std::string& b) {
    if (a == b) return;
    equal = false;
    std::fprintf(stderr, "engine_fastforward: %s diverged\n  strict: %s\n  event:  %s\n",
                 what, a.c_str(), b.c_str());
  };
  check("cycles", std::to_string(strict.summary.cycles),
        std::to_string(event.summary.cycles));
  check("requests", std::to_string(strict.summary.requests),
        std::to_string(event.summary.requests));
  check("completions", std::to_string(strict.summary.completions),
        std::to_string(event.summary.completions));
  check("completed", std::to_string(strict.summary.completed),
        std::to_string(event.summary.completed));
  check("stats", strict.summary.stats.to_json(),
        event.summary.stats.to_json());
  if (!equal) return 3;
  if (event.summary.visited_cycles >= event.summary.cycles) {
    std::fprintf(stderr,
                 "engine_fastforward: run_event visited %llu of %llu cycles "
                 "-- no fast-forwarding happened\n",
                 static_cast<unsigned long long>(event.summary.visited_cycles),
                 static_cast<unsigned long long>(event.summary.cycles));
    return 3;
  }

  const double skip_ratio =
      static_cast<double>(event.summary.cycles) /
      static_cast<double>(event.summary.visited_cycles);
  const double speedup =
      event.seconds > 0.0 ? strict.seconds / event.seconds : 0.0;

  std::printf("engine        cycles      visited     wall[s]\n");
  std::printf("strict  %12llu %11llu %11.3f\n",
              static_cast<unsigned long long>(strict.summary.cycles),
              static_cast<unsigned long long>(strict.summary.visited_cycles),
              strict.seconds);
  std::printf("event   %12llu %11llu %11.3f\n",
              static_cast<unsigned long long>(event.summary.cycles),
              static_cast<unsigned long long>(event.summary.visited_cycles),
              event.seconds);
  std::printf("\nskip ratio %.2fx (engine ticked %.2f%% of simulated cycles)\n",
              skip_ratio,
              100.0 * static_cast<double>(event.summary.visited_cycles) /
                  static_cast<double>(event.summary.cycles));
  std::printf("wall-clock speedup %.2fx (target >= 5x)\n", speedup);

  // Deterministic simulated-time fields: gated by the committed baseline.
  session.set_number("cycles", static_cast<double>(strict.summary.cycles));
  session.set_number("requests", static_cast<double>(strict.summary.requests));
  session.set_number("completions",
                     static_cast<double>(strict.summary.completions));
  session.set_number("visited_cycles",
                     static_cast<double>(event.summary.visited_cycles));
  session.set_number("skip_ratio", skip_ratio);
  // Host timing: reported for humans/artifacts, never baselined.
  session.set_number("strict_wall_seconds", strict.seconds);
  session.set_number("event_wall_seconds", event.seconds);
  session.set_number("speedup", speedup);
  return session.finish();
}
