// Figure 1: cache miss-rate analysis (the paper's motivation study).
//
// Left side: miss rate of the irregular workloads through a conventional
// cache hierarchy (paper: 49.09% average, SG and HPCG above 50%).
// Right side: sequential (A[i] = B[i]) vs random (A[i] = B[C[i]]) SG
// miss rate as the dataset grows from 80 KB to 32 GB (paper: 2.36% vs
// 63.85% at 32 GB — over 20x).
#include <cstdio>

#include "bench_common.hpp"
#include "cache/cache.hpp"
#include "common/rng.hpp"

using namespace mac3d;

namespace {

CacheHierarchy make_hierarchy() {
  // A conventional high-performance processor stack: 32 KB L1 / 256 KB L2
  // per core plus a shared 8 MB LLC (per-core slice used here since the
  // trace is replayed thread-by-thread).
  return CacheHierarchy({
      CacheConfig{"L1", 32 * 1024, 64, 8, true},
      CacheConfig{"L2", 256 * 1024, 64, 8, true},
      CacheConfig{"LLC", 8 * 1024 * 1024, 64, 16, true},
  });
}

void left_side() {
  print_banner("Figure 1 (left): cache miss rate of irregular workloads");
  SuiteOptions options = default_suite_options();

  Table table({"workload", "accesses", "L1 miss", "overall miss (LLC->mem)"});
  double sum = 0.0;
  int count = 0;
  for (const Workload* workload : workload_registry()) {
    WorkloadParams params;
    params.threads = options.threads;
    params.scale = options.scale;
    params.config = options.config;
    const MemoryTrace trace = workload->trace(params);

    CacheHierarchy caches = make_hierarchy();
    for (std::uint32_t t = 0; t < trace.threads(); ++t) {
      for (const MemRecord& record : trace.thread(static_cast<ThreadId>(t))) {
        if (record.op == MemOp::kFence) continue;
        caches.access(record.addr, record.op == MemOp::kStore ||
                                       record.op == MemOp::kAtomic);
      }
    }
    const double l1 = caches.level(0).stats().miss_rate();
    const double overall = caches.overall_miss_rate();
    sum += l1;
    ++count;
    table.add_row({bench::label(workload->name()),
                   Table::count(caches.level(0).stats().accesses),
                   Table::pct(l1), Table::pct(overall)});
  }
  table.print();
  print_reference("average miss rate", "49.09%",
                  Table::pct(sum / count) + " (L1)");
}

void right_side() {
  print_banner(
      "Figure 1 (right): sequential vs random SG miss rate vs dataset size");
  // Address-stream sweep: the dataset need not be materialized — only the
  // access stream matters; 2M sampled accesses per size point.
  const std::uint64_t kSamples = 2'000'000;
  Table table({"dataset", "sequential miss", "random miss"});
  for (std::uint64_t bytes = 80ull * 1024; bytes <= 32ull << 30; bytes *= 8) {
    const std::uint64_t elems = bytes / 8;

    CacheHierarchy seq_caches = make_hierarchy();
    for (std::uint64_t i = 0; i < kSamples; ++i) {
      seq_caches.access((i % elems) * 8, false);         // B[i]
      seq_caches.access((32ull << 30) + (i % elems) * 8,  // A[i] =
                        true);
    }

    // "C[i] is a random positive integer smaller than the size of B":
    // the index is generated, so the kernel touches B (random) and A.
    CacheHierarchy rnd_caches = make_hierarchy();
    Xoshiro256 rng(7);
    for (std::uint64_t i = 0; i < kSamples; ++i) {
      rnd_caches.access(rng.below(elems) * 8, false);            // B[C[i]]
      rnd_caches.access((32ull << 30) + (i % elems) * 8, true);  // A[i]
    }

    table.add_row({Table::bytes(bytes),
                   Table::pct(seq_caches.level(0).stats().miss_rate()),
                   Table::pct(rnd_caches.level(0).stats().miss_rate())});
  }
  table.print();
  print_reference("random miss at 32 GB", "63.85%", "see last row");
  print_reference("sequential miss at 32 GB", "2.36%", "see last row");
}

}  // namespace

int main(int argc, char** argv) {
  bench::Session session(argc, argv, "fig01_miss_rate");
  left_side();
  right_side();
  return session.finish();
}
