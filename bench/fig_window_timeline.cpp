// Windowed telemetry timeline over the multi-node closed-loop system run
// (docs/OBSERVABILITY.md §streaming snapshots): stream delta-encoded
// in-run snapshots at a fixed cycle period, then feed the stream through
// the same analyzer that backs `mac3d analyze`. The headline numbers are
// the analyzer's verdicts — window count, mean in-flight, Little's-law
// dwell, the per-window critical stage — so the baseline gate covers the
// whole telemetry pipeline: probe registration, boundary landing,
// delta encoding, stream parsing and diagnosis.
//
// `--snapshot-out FILE` additionally writes the raw JSONL stream (the CI
// telemetry-smoke job uploads it as an artifact).
#include <algorithm>
#include <cstdio>
#include <string>

#include "arch/system.hpp"
#include "bench_common.hpp"
#include "obs/analysis.hpp"
#include "obs/profiler.hpp"
#include "obs/snapshot.hpp"

int main(int argc, char** argv) {
  using namespace mac3d;
  bench::Session session(argc, argv, "fig_window_timeline");
  std::string snapshot_out;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--snapshot-out" && i + 1 < argc) snapshot_out = argv[++i];
  }
  print_banner("Window timeline: streamed snapshots + analysis, 4-node system");

  const SuiteOptions base = default_suite_options();
  SimConfig config = base.config;
  config.nodes = 4;
  config.validate();
  const Workload* workload = find_workload("sg");
  WorkloadParams params;
  params.threads = base.threads;
  params.scale = base.scale;
  params.config = config;
  const MemoryTrace trace = workload->trace(params);

  System system(config);
  system.attach_trace(trace);
  ActivityCensus census;
  system.attach_census(&census);
  SnapshotStreamer snapshot(4096);
  StallWatchdog watchdog(3);
  snapshot.attach_watchdog(&watchdog);
  system.attach_snapshot(&snapshot);
  const SystemRunSummary summary = system.run();
  census.seal();

  if (!snapshot_out.empty() && !snapshot.write(snapshot_out)) {
    std::fprintf(stderr, "fig_window_timeline: cannot write %s\n",
                 snapshot_out.c_str());
    return 2;
  }

  // Feed the stream straight back through the `mac3d analyze` machinery —
  // parse errors or a conservation failure here are a pipeline bug, not a
  // performance regression, so they exit 2 rather than tripping the gate.
  SnapshotStream stream;
  std::string error;
  if (!parse_snapshot_stream(snapshot.str(), stream, error)) {
    std::fprintf(stderr, "fig_window_timeline: %s\n", error.c_str());
    return 2;
  }
  const FlatReport no_report;
  const AnalysisResult analysis =
      analyze_stream(no_report, stream, AnalysisOptions{});
  if (analysis.runs.size() != 1 || !analysis.runs[0].stream_conserved) {
    std::fprintf(stderr, "fig_window_timeline: stream conservation failed\n");
    return 2;
  }
  const RunAnalysis& run = analysis.runs[0];

  std::uint64_t peak_completions = 0;
  for (const WindowDiagnosis& w : run.windows) {
    peak_completions = std::max(peak_completions, w.completions_delta);
  }

  std::printf(
      "windows %zu (period 4096 cy), end cycle %llu\n"
      "throughput %.6g completions/cycle, mean in-flight %.6g\n"
      "queue dwell %.6g cy (Little's law), peak window completions %llu\n"
      "critical stage %s\n",
      run.windows.size(), static_cast<unsigned long long>(run.end_cycle),
      run.throughput, run.mean_in_flight, run.derived_latency,
      static_cast<unsigned long long>(peak_completions),
      run.critical_component.empty() ? "(none)"
                                     : run.critical_component.c_str());

  // All simulated-time numbers — deterministic at a fixed MAC3D_SCALE.
  session.set_number("cycles", static_cast<double>(summary.cycles));
  session.set_number("requests", static_cast<double>(summary.requests));
  session.set_number("windows", static_cast<double>(run.windows.size()));
  session.set_number("throughput", run.throughput);
  session.set_number("mean_in_flight", run.mean_in_flight);
  session.set_number("derived_latency_cycles", run.derived_latency);
  session.set_number("peak_window_completions",
                     static_cast<double>(peak_completions));
  session.set_number("stalled_windows",
                     static_cast<double>(watchdog.stalled_windows()));
  session.set_number("critical_windows",
                     static_cast<double>(run.critical_windows));
  session.set_string("critical_stage", run.critical_component);
  return session.finish();
}
