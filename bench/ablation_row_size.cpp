// Ablation (paper Sec. 4.3, applicability): the MAC on other 3D-stacked
// geometries. HMC 1.0 capped packets at 128 B; HMC 2.1 rows are 256 B;
// HBM pages are 1 KB (the paper: the MAC supports them by enlarging the
// FLIT map and FLIT table, with no change to the coalescing logic).
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace mac3d;
  bench::Session session(argc, argv, "ablation_row_size");
  print_banner("Ablation: row/page size (HMC 1.0 / HMC 2.1 / HBM)");

  Table table({"device", "row", "FLIT map bits", "mean eff", "mean bw eff",
               "mean packet"});
  struct Geometry {
    const char* name;
    std::uint32_t row_bytes;
  };
  for (const Geometry& geometry :
       {Geometry{"HMC 1.0 (128B max)", 128}, Geometry{"HMC 2.1 (256B)", 256},
        Geometry{"HMC future (512B)", 512}, Geometry{"HBM (1KB page)", 1024}}) {
    SuiteOptions options = default_suite_options();
    options.config.row_bytes = geometry.row_bytes;
    options.config.builder_max_bytes = geometry.row_bytes;
    options.run_raw = false;
    const auto runs = run_suite(options);
    double eff = 0.0;
    double bw = 0.0;
    double packet = 0.0;
    for (const WorkloadRun& run : runs) {
      eff += run.mac.coalescing_efficiency();
      bw += run.mac.bandwidth_efficiency();
      packet += run.mac.avg_packet_bytes;
    }
    const auto n = static_cast<double>(runs.size());
    table.add_row({geometry.name, Table::bytes(geometry.row_bytes),
                   std::to_string(geometry.row_bytes / kFlitBytes),
                   Table::pct(eff / n), Table::pct(bw / n),
                   Table::bytes(static_cast<std::uint64_t>(packet / n))});
  }
  table.print();
  return session.finish();
}
