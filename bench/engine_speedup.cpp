// Engine scaling: wall-clock speedup of the jobs-parallel workload suite
// over the serial suite (docs/PARALLELISM.md, EXPERIMENTS.md §engine).
// Runs the suite twice (serial then parallel) so it costs 2x one figure
// binary — keep MAC3D_SCALE small. Pass the worker count via MAC3D_JOBS
// (0 / unset = hardware concurrency).
#include <cstdio>
#include <thread>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace mac3d;
  bench::Session session(argc, argv, "engine_speedup");
  print_banner("Engine scaling: serial vs jobs-parallel suite wall clock");
  SuiteOptions options = default_suite_options();
  options.run_raw = false;  // scaling question only needs the MAC path

  // default_suite_options() already folded MAC3D_JOBS in; 1 (the env
  // default) would make the "parallel" leg serial too, so fall back to
  // hardware concurrency unless the env asked for a specific count.
  const std::uint32_t jobs = options.jobs > 1 ? options.jobs : 0;
  const bench::SuiteSpeedup result =
      bench::measure_suite_speedup(options, jobs);
  const std::uint32_t effective_jobs =
      result.jobs != 0 ? result.jobs
                       : std::max(1u, std::thread::hardware_concurrency());
  std::printf("  serial suite:   %7.3f s\n", result.serial_seconds);
  std::printf("  parallel suite: %7.3f s  (%u jobs)\n",
              result.parallel_seconds, effective_jobs);
  std::printf("  speedup:        %6.2fx\n", result.speedup);

  session.set_number("jobs", effective_jobs);
  session.set_number("serial_seconds", result.serial_seconds);
  session.set_number("parallel_seconds", result.parallel_seconds);
  session.set_number("speedup", result.speedup);
  return session.finish();
}
