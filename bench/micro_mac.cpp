// Component microbenchmarks (google-benchmark): throughput of the hot
// simulator paths — FLIT map/table operations, ARQ comparator insert,
// full MAC cycles, HMC device submission, cache accesses.
#include <benchmark/benchmark.h>

#include "cache/cache.hpp"
#include "common/rng.hpp"
#include "mac/coalescer.hpp"
#include "mac/flit_map.hpp"
#include "mac/flit_table.hpp"
#include "mem/hmc_device.hpp"

namespace {

using namespace mac3d;

void BM_FlitMapGroupPattern(benchmark::State& state) {
  FlitMap map(16);
  map.set(5);
  map.set(8);
  map.set(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.group_pattern(4));
  }
}
BENCHMARK(BM_FlitMapGroupPattern);

void BM_FlitTableLookup(benchmark::State& state) {
  FlitTable table(256, 64);
  std::uint32_t pattern = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.lookup(pattern));
    pattern = pattern % 15 + 1;
  }
}
BENCHMARK(BM_FlitTableLookup);

void BM_ArqInsert(benchmark::State& state) {
  SimConfig config;
  const AddressMap map(config);
  Xoshiro256 rng(1);
  Arq arq(config, map);
  Cycle now = 0;
  for (auto _ : state) {
    RawRequest request;
    request.addr = rng.below(config.hmc_capacity) & ~0xFULL;
    request.tid = static_cast<ThreadId>(now % 8);
    request.tag = static_cast<Tag>(now);
    benchmark::DoNotOptimize(arq.insert(request, now));
    if (arq.size() > config.arq_entries - 2) {
      while (!arq.empty()) arq.pop();
    }
    ++now;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ArqInsert);

void BM_MacCycle(benchmark::State& state) {
  SimConfig config;
  HmcDevice device(config);
  MacCoalescer mac(config, device);
  Xoshiro256 rng(2);
  Cycle now = 0;
  for (auto _ : state) {
    RawRequest request;
    request.addr = rng.below(1u << 24) & ~0xFULL;
    request.tid = static_cast<ThreadId>(now % 8);
    request.tag = static_cast<Tag>(now);
    (void)mac.try_accept(request, now);
    mac.tick(now);
    benchmark::DoNotOptimize(mac.drain(now));
    ++now;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MacCycle);

void BM_HmcSubmit(benchmark::State& state) {
  SimConfig config;
  HmcDevice device(config);
  Xoshiro256 rng(3);
  Cycle now = 0;
  TransactionId id = 1;
  for (auto _ : state) {
    HmcRequest request;
    request.id = id++;
    request.addr = rng.below(config.hmc_capacity) & ~0xFFULL;
    request.data_bytes = 64u << (id % 3);
    benchmark::DoNotOptimize(device.submit(std::move(request), now));
    device.drain(now);
    now += 4;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HmcSubmit);

void BM_CacheAccess(benchmark::State& state) {
  Cache cache(CacheConfig{"L1", 32 * 1024, 64, 8, true});
  Xoshiro256 rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(rng.below(1u << 20), false));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

}  // namespace

BENCHMARK_MAIN();
