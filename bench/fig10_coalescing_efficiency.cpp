// Figure 10: coalescing efficiency per workload at 2 / 4 / 8 threads.
// Paper: averages 48.37% (2), 50.51% (4), 52.86% (8); MG, GRAPPOLO, SG,
// SP and SPARSELU above 60% at 8 threads.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace mac3d;
  bench::Session session(argc, argv, "fig10_coalescing_efficiency");
  print_banner("Figure 10: coalescing efficiency vs thread count");
  const std::uint32_t thread_counts[] = {2, 4, 8};

  std::vector<bench::SuiteSeries> series;
  for (const std::uint32_t threads : thread_counts) {
    SuiteOptions options = default_suite_options();
    options.threads = threads;
    options.run_raw = false;  // efficiency needs only the MAC path
    series.push_back(bench::run_series(options));
  }

  Table table({"workload", "2 threads", "4 threads", "8 threads"});
  for (std::size_t w = 0; w < series[0].runs.size(); ++w) {
    table.add_row({bench::label(series[0].runs[w].name),
                   Table::pct(series[0].runs[w].mac.coalescing_efficiency()),
                   Table::pct(series[1].runs[w].mac.coalescing_efficiency()),
                   Table::pct(series[2].runs[w].mac.coalescing_efficiency())});
  }
  table.add_row({"AVERAGE", Table::pct(series[0].mean_coalescing),
                 Table::pct(series[1].mean_coalescing),
                 Table::pct(series[2].mean_coalescing)});
  table.print();
  session.set_number("mean_coalescing_2t", series[0].mean_coalescing);
  session.set_number("mean_coalescing_4t", series[1].mean_coalescing);
  session.set_number("mean_coalescing_8t", series[2].mean_coalescing);
  print_reference("average at 2/4/8 threads", "48.37% / 50.51% / 52.86%",
                  Table::pct(series[0].mean_coalescing) + " / " +
                      Table::pct(series[1].mean_coalescing) + " / " +
                      Table::pct(series[2].mean_coalescing));
  return session.finish();
}
