// Table 1: simulation environment configuration.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace mac3d;
  bench::Session session(argc, argv, "table1_config");
  print_banner("Table 1: Simulation Environment Configurations");
  SimConfig config;
  config.apply_env();
  config.validate();
  std::printf("%s", config.to_table().c_str());
  std::printf(
      "\nDerived: %u FLITs/row, %u builder groups, max %u targets/entry,\n"
      "ARQ storage %u B, total banks %u\n",
      config.flits_per_row(), config.builder_groups(),
      config.max_targets_per_entry(),
      config.arq_entries * config.arq_entry_bytes, config.total_banks());
  print_reference("avg HMC access latency", "93 ns", "see tests (calibrated)");
  return session.finish();
}
