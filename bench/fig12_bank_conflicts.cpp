// Figure 12: bank-conflict reduction per workload (raw path vs MAC).
// Paper (full-size inputs): ~644 million conflicts removed on average,
// 7.73 billion total; NQUEENS and SP notably high. Absolute counts scale
// with trace length (MAC3D_SCALE); the per-workload shape and the
// fraction of conflicts removed are the scale-free comparison points.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace mac3d;
  bench::Session session(argc, argv, "fig12_bank_conflicts");
  print_banner("Figure 12: bank conflict reduction");
  SuiteOptions options = default_suite_options();
  const auto runs = run_suite(options);

  Table table({"workload", "raw conflicts", "MAC conflicts", "removed",
               "removed %"});
  std::uint64_t total_removed = 0;
  for (const WorkloadRun& run : runs) {
    const std::uint64_t removed = bank_conflict_reduction(run.raw, run.mac);
    total_removed += removed;
    const double fraction =
        run.raw.bank_conflicts == 0
            ? 0.0
            : static_cast<double>(removed) /
                  static_cast<double>(run.raw.bank_conflicts);
    table.add_row({bench::label(run.name),
                   Table::count(run.raw.bank_conflicts),
                   Table::count(run.mac.bank_conflicts),
                   Table::count(removed), Table::pct(fraction)});
  }
  table.print();
  std::printf("total conflicts removed: %s (average %s per workload)\n",
              Table::count(total_removed).c_str(),
              Table::count(total_removed / runs.size()).c_str());
  print_reference("paper totals (full-size inputs)",
                  "7.73 B total, 644 M average", "scaled run above");
  return session.finish();
}
