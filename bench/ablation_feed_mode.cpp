// Ablation: feed model. The default trace-streaming driver (the paper's
// Sec. 5.1 methodology — memory instruction stream into the timed MAC)
// vs the execution-driven closed loop of Sec. 3 where threads stall on
// outstanding references. The closed loop desynchronizes threads after
// random-latency accesses, which starves cross-thread coalescing — one
// reason the paper's own evaluation replays traces.
#include <cstdio>

#include "bench_common.hpp"
#include "sim/driver.hpp"

int main(int argc, char** argv) {
  using namespace mac3d;
  bench::Session session(argc, argv, "ablation_feed_mode");
  print_banner("Ablation: trace streaming vs execution-driven closed loop");
  SuiteOptions base = default_suite_options();

  Table table({"workload", "eff (streaming)", "eff (closed loop)",
               "targets (s)", "targets (cl)"});
  for (const Workload* workload : workload_registry()) {
    WorkloadParams params;
    params.threads = base.threads;
    params.scale = base.scale;
    params.config = base.config;
    const MemoryTrace trace = workload->trace(params);

    DriveOptions streaming;
    streaming.mode = FeedMode::kStreaming;
    DriveOptions closed;
    closed.mode = FeedMode::kClosedLoop;
    const DriverResult s = run_mac(trace, base.config, base.threads,
                                   streaming);
    const DriverResult c = run_mac(trace, base.config, base.threads, closed);
    table.add_row({bench::label(workload->name()),
                   Table::pct(s.coalescing_efficiency()),
                   Table::pct(c.coalescing_efficiency()),
                   Table::fmt(s.avg_targets_per_entry, 2),
                   Table::fmt(c.avg_targets_per_entry, 2)});
  }
  table.print();
  return session.finish();
}
