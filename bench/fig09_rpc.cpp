// Figure 9: raw requests per cycle (Eq. 2) —
//   RPC = IPC x RPI x #cores x mem_access_rate
// measured from each workload's traced instruction mix (8 cores, IPC 1 for
// the in-order cores). The paper reports every benchmark above 2 RPC and
// an average of up to 9.32 requests ready to enter the ARQ per cycle.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace mac3d;
  bench::Session session(argc, argv, "fig09_rpc");
  print_banner("Figure 9: raw requests per cycle (Eq. 2)");
  SuiteOptions options = default_suite_options();
  const double ipc = 1.0;  // simple in-order cores

  Table table({"workload", "instructions", "RPI", "mem access rate", "RPC"});
  double sum = 0.0;
  int count = 0;
  for (const Workload* workload : workload_registry()) {
    WorkloadParams params;
    params.threads = options.threads;
    params.scale = options.scale;
    params.config = options.config;
    const MemoryTrace trace = workload->trace(params);
    const double rpi = trace.requests_per_instruction();
    const double rate = trace.mem_access_rate();
    const double rpc = ipc * rpi * options.config.cores * rate;
    sum += rpc;
    ++count;
    table.add_row({bench::label(workload->name()),
                   Table::count(trace.instructions()), Table::fmt(rpi, 3),
                   Table::fmt(rate, 3), Table::fmt(rpc, 2)});
  }
  table.print();
  print_reference("every benchmark", "> 2 RPC", "see table");
  print_reference("average RPC", "up to 9.32", Table::fmt(sum / count, 2));
  return session.finish();
}
