// Policy comparison: the four coalescer policies (docs/DESIGN.md §policy)
// over the twelve-workload suite — coalescing efficiency (Sec. 5.3.1) and
// bandwidth efficiency (Eq. 1) side by side. The MAC should dominate both
// fixed-granularity baselines; the warp-iterative policy sits between the
// MSHR baseline and the MAC on irregular workloads because its merge
// window only spans one warp of lanes at a time.
#include <array>
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace mac3d;
  bench::Session session(argc, argv, "fig_policy_compare");
  print_banner("Policy comparison: raw vs MSHR vs warp vs MAC");
  SuiteOptions options = default_suite_options();
  options.run_raw = true;
  options.run_mshr = true;
  options.run_warp = true;
  options.run_mac = true;
  const auto runs = run_suite(options);

  constexpr std::array<CoalescerPolicy, 4> kPolicies = {
      CoalescerPolicy::kRaw, CoalescerPolicy::kMshr, CoalescerPolicy::kWarp,
      CoalescerPolicy::kMac};

  Table coal({"workload", "raw", "MSHR", "warp", "MAC"});
  Table bw({"workload", "raw", "MSHR", "warp", "MAC"});
  std::array<double, 4> coal_sum{};
  std::array<double, 4> bw_sum{};
  for (const WorkloadRun& run : runs) {
    std::vector<std::string> coal_row = {bench::label(run.name)};
    std::vector<std::string> bw_row = {bench::label(run.name)};
    for (std::size_t p = 0; p < kPolicies.size(); ++p) {
      const DriverResult& result = run.result(kPolicies[p]);
      const double ce = result.coalescing_efficiency();
      const double be = result.bandwidth_efficiency();
      coal_sum[p] += ce;
      bw_sum[p] += be;
      coal_row.push_back(Table::pct(ce));
      bw_row.push_back(Table::pct(be));
      const std::string policy(to_string(kPolicies[p]));
      session.set_number(
          "coalescing_efficiency." + policy + "." + run.name, ce);
      session.set_number("bandwidth_efficiency." + policy + "." + run.name,
                         be);
    }
    coal.add_row(coal_row);
    bw.add_row(bw_row);
  }
  const double n = static_cast<double>(runs.size());
  for (std::size_t p = 0; p < kPolicies.size(); ++p) {
    const std::string policy(to_string(kPolicies[p]));
    session.set_number("mean_coalescing_efficiency." + policy,
                       coal_sum[p] / n);
    session.set_number("mean_bandwidth_efficiency." + policy, bw_sum[p] / n);
  }

  std::printf("\ncoalescing efficiency (1 - packets / raw requests):\n");
  coal.print();
  std::printf("\nbandwidth efficiency (Eq. 1, data / link bytes):\n");
  bw.print();
  print_reference("MAC mean coalescing efficiency", "~55% (Fig. 10)",
                  Table::pct(coal_sum[3] / n));
  print_reference("MAC mean bandwidth efficiency", "70.35% (Fig. 13)",
                  Table::pct(bw_sum[3] / n));
  return session.finish();
}
