// Idle-cycle census over the multi-node closed-loop system run
// (docs/OBSERVABILITY.md §profiler): how much of every component's
// lifetime is dead time. The dead-time fraction is the sizing evidence
// for the ROADMAP's event-driven fast-forward engine — a cycle the
// engine can prove dead for every component is a cycle it can skip.
//
// `--census-out FILE` additionally writes the full per-component census
// as JSON (the CI perf-smoke job uploads it as an artifact).
#include <cstdio>
#include <fstream>
#include <string>

#include "arch/system.hpp"
#include "bench_common.hpp"
#include "obs/profiler.hpp"

int main(int argc, char** argv) {
  using namespace mac3d;
  bench::Session session(argc, argv, "idle_census");
  std::string census_out;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--census-out" && i + 1 < argc) census_out = argv[++i];
  }
  print_banner("Idle-cycle census: per-component dead time, 4-node system");

  const SuiteOptions base = default_suite_options();
  SimConfig config = base.config;
  config.nodes = 4;
  config.validate();
  const Workload* workload = find_workload("sg");
  WorkloadParams params;
  params.threads = base.threads;
  params.scale = base.scale;
  params.config = config;
  const MemoryTrace trace = workload->trace(params);

  System system(config);
  system.attach_trace(trace);
  ActivityCensus census;
  HostProfiler profiler;
  system.attach_census(&census);
  system.attach_profiler(&profiler);
  const SystemRunSummary summary = system.run();
  census.seal();

  std::printf("%s", census.to_table().c_str());
  std::printf("\nhost wall-clock attribution\n%s",
              profiler.to_table().c_str());

  if (!census_out.empty()) {
    std::ofstream out(census_out, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "idle_census: cannot write %s\n",
                   census_out.c_str());
      return 2;
    }
    out << census.to_json() << "\n";
  }

  // Headline numbers for the baseline gate: all simulated-time, so they
  // are deterministic. Host wall-clock stays out of the report fields.
  std::uint64_t active = 0;
  std::uint64_t idle = 0;
  for (const ActivityCensus::Row& row : census.rows()) {
    active += row.active_cycles;
    idle += row.idle_cycles;
  }
  session.set_number("cycles", static_cast<double>(summary.cycles));
  session.set_number("requests", static_cast<double>(summary.requests));
  session.set_number("components", static_cast<double>(census.rows().size()));
  session.set_number("active_cycles_total", static_cast<double>(active));
  session.set_number("idle_cycles_total", static_cast<double>(idle));
  session.set_number("dead_time_fraction", census.dead_time_fraction());
  return session.finish();
}
