// Shared helpers for the per-figure benchmark binaries.
//
// Every binary regenerates one table or figure of the paper. Scale the
// workloads with MAC3D_SCALE (default 1.0 ~ a few hundred thousand memory
// operations per workload; the paper's full-size runs are proportionally
// larger but every reported ratio is scale-free — see DESIGN.md §4).
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/stats.hpp"
#include "obs/report_diff.hpp"
#include "obs/run_report.hpp"
#include "sim/experiment.hpp"
#include "sim/metrics.hpp"
#include "sim/report.hpp"
#include "trace/analyzer.hpp"
#include "workloads/all.hpp"

namespace mac3d::bench {

/// Per-binary run-report session (docs/OBSERVABILITY.md §run report).
/// Parses `--report FILE`, `--baseline FILE` and `--tolerance PCT` from
/// the binary's argv. With --report, finish() (or the destructor as a
/// safety net) writes a RunReport carrying the benchmark's name, whatever
/// headline numbers the binary recorded via set_number()/set_path_stats(),
/// the effective config (MAC3D_CONFIG applied) and the wall clock. With
/// --baseline, finish() additionally diffs this run against the saved
/// baseline report (report_diff.hpp) and returns nonzero when any metric
/// moved past the tolerance — `return session.finish();` from main() makes
/// every figure binary a regression gate. Without the flags every call is
/// a cheap no-op, so instrumenting a figure binary costs one declaration.
class Session {
 public:
  Session(int argc, char** argv, std::string name)
      : name_(std::move(name)), start_(std::chrono::steady_clock::now()) {
    for (int i = 1; i < argc; ++i) {
      const std::string_view arg = argv[i];
      if (arg == "--report" && i + 1 < argc) {
        report_path_ = argv[++i];
      } else if (arg == "--baseline" && i + 1 < argc) {
        baseline_path_ = argv[++i];
      } else if (arg == "--tolerance" && i + 1 < argc) {
        tolerance_pct_ = std::atof(argv[++i]);
      }
    }
    report_.set_string("bench", name_);
  }

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  ~Session() {
    if (!finished_) write_report();
  }

  /// Write the report (if --report) and check against the baseline (if
  /// --baseline). Returns the process exit code: 0 in-tolerance, 1 when a
  /// baselined metric regressed, 2 on IO/parse trouble.
  int finish() {
    write_report();
    if (baseline_path_.empty()) return 0;
    FlatReport baseline;
    FlatReport current;
    std::string error;
    if (!load_report(baseline_path_, baseline, error) ||
        !parse_report(report_.to_json(), current, error)) {
      std::fprintf(stderr, "%s: baseline check: %s\n", name_.c_str(),
                   error.c_str());
      return 2;
    }
    DiffOptions options;
    options.tolerance_pct = tolerance_pct_;
    options.fail_on_missing = false;  // baselines may predate new metrics
    const DiffResult result = diff_reports(baseline, current, options);
    const std::string table = render_diff(result, options);
    if (!table.empty()) {
      std::printf("%s vs baseline %s:\n%s", name_.c_str(),
                  baseline_path_.c_str(), table.c_str());
    }
    return result.ok() ? 0 : 1;
  }

  [[nodiscard]] bool enabled() const noexcept { return !report_path_.empty(); }

  /// Record a headline number (figure averages, speedups, ...).
  void set_number(const std::string& key, double value) {
    report_.set_number(key, value);
  }
  void set_string(const std::string& key, std::string_view value) {
    report_.set_string(key, value);
  }
  /// Attach a full per-path StatSet under "paths".
  void set_path_stats(const std::string& path, const StatSet& stats) {
    report_.set_path_stats(path, stats);
  }

 private:
  void write_report() {
    finished_ = true;
    report_.set_number(
        "wall_seconds",
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count());
    SimConfig config;
    config.apply_env();
    report_.set_config(config);
    if (report_path_.empty()) return;
    if (!report_.write(report_path_)) {
      std::fprintf(stderr, "%s: cannot write %s\n", name_.c_str(),
                   report_path_.c_str());
    }
  }

  std::string name_;
  std::string report_path_;
  std::string baseline_path_;
  double tolerance_pct_ = 0.0;
  bool finished_ = false;
  std::chrono::steady_clock::time_point start_;
  RunReport report_;
};

/// Upper-case the workload name the way the paper's figures label them.
inline std::string label(const std::string& name) {
  std::string out = name;
  for (char& c : out) c = static_cast<char>(std::toupper(c));
  return out;
}

/// Collect one efficiency series (all 12 workloads) at a thread count.
/// Workload runs execute on `options.jobs` workers (MAC3D_JOBS via
/// default_suite_options(); output is jobs-invariant, docs/PARALLELISM.md)
/// and the suite wall clock is kept so binaries can report the speedup.
struct SuiteSeries {
  std::vector<WorkloadRun> runs;
  double mean_coalescing = 0.0;
  double mean_bandwidth = 0.0;
  double wall_seconds = 0.0;   ///< suite wall clock at options.jobs workers
  std::uint32_t jobs = 1;      ///< worker count the series ran with
};

inline SuiteSeries run_series(const SuiteOptions& options) {
  SuiteSeries series;
  series.jobs = options.jobs;
  const auto start = std::chrono::steady_clock::now();
  series.runs = run_suite(options);
  series.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  std::vector<double> coalescing;
  std::vector<double> bandwidth;
  for (const WorkloadRun& run : series.runs) {
    coalescing.push_back(run.mac.coalescing_efficiency());
    bandwidth.push_back(run.mac.bandwidth_efficiency());
  }
  series.mean_coalescing = mean(coalescing);
  series.mean_bandwidth = mean(bandwidth);
  return series;
}

/// Wall-clock speedup of the jobs-parallel suite over the serial suite.
/// Runs the suite twice (jobs = 1, then jobs = `jobs`; 0 = hardware
/// concurrency), so it doubles the bench cost — intended for explicit
/// speedup studies (EXPERIMENTS.md), not for every figure binary.
struct SuiteSpeedup {
  double serial_seconds = 0.0;
  double parallel_seconds = 0.0;
  double speedup = 0.0;
  std::uint32_t jobs = 0;
};

inline SuiteSpeedup measure_suite_speedup(SuiteOptions options,
                                          std::uint32_t jobs = 0) {
  SuiteSpeedup result;
  options.jobs = 1;
  result.serial_seconds = run_series(options).wall_seconds;
  options.jobs = jobs;
  const SuiteSeries parallel = run_series(options);
  result.parallel_seconds = parallel.wall_seconds;
  result.jobs = parallel.jobs;
  result.speedup = result.parallel_seconds > 0.0
                       ? result.serial_seconds / result.parallel_seconds
                       : 0.0;
  return result;
}

}  // namespace mac3d::bench
