// Shared helpers for the per-figure benchmark binaries.
//
// Every binary regenerates one table or figure of the paper. Scale the
// workloads with MAC3D_SCALE (default 1.0 ~ a few hundred thousand memory
// operations per workload; the paper's full-size runs are proportionally
// larger but every reported ratio is scale-free — see DESIGN.md §4).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "sim/experiment.hpp"
#include "sim/metrics.hpp"
#include "sim/report.hpp"
#include "trace/analyzer.hpp"
#include "workloads/all.hpp"

namespace mac3d::bench {

/// Upper-case the workload name the way the paper's figures label them.
inline std::string label(const std::string& name) {
  std::string out = name;
  for (char& c : out) c = static_cast<char>(std::toupper(c));
  return out;
}

/// Collect one efficiency series (all 12 workloads) at a thread count.
struct SuiteSeries {
  std::vector<WorkloadRun> runs;
  double mean_coalescing = 0.0;
  double mean_bandwidth = 0.0;
};

inline SuiteSeries run_series(const SuiteOptions& options) {
  SuiteSeries series;
  series.runs = run_suite(options);
  std::vector<double> coalescing;
  std::vector<double> bandwidth;
  for (const WorkloadRun& run : series.runs) {
    coalescing.push_back(run.mac.coalescing_efficiency());
    bandwidth.push_back(run.mac.bandwidth_efficiency());
  }
  series.mean_coalescing = mean(coalescing);
  series.mean_bandwidth = mean(bandwidth);
  return series;
}

}  // namespace mac3d::bench
